#include "pql/relation.h"

#include <algorithm>

namespace ariadne {

namespace {

/// Same mixing step as common/value.cc — row hashes must keep matching
/// TupleHash of the materialized tuples (the dedup set compares both).
size_t HashCombine(size_t seed, size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

size_t KindSeed(Value::Kind kind) { return static_cast<size_t>(kind); }

}  // namespace

size_t TupleHash::operator()(const Tuple& t) const {
  size_t seed = t.size();
  for (const Value& v : t) {
    seed ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  }
  return seed;
}

std::string TupleToString(const Tuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += t[i].ToString();
  }
  out += ")";
  return out;
}

size_t TupleByteSize(const Tuple& t) {
  size_t bytes = 8;  // row overhead
  for (const Value& v : t) bytes += v.ByteSize();
  return bytes;
}

// ------------------------------------------------------------- RowView

const std::string& Relation::RowView::AsString(size_t col) const {
  return rel_->string_pool_[cells_[col].ref];
}

const std::vector<double>& Relation::RowView::AsDoubleVector(
    size_t col) const {
  return rel_->vec_pool_[cells_[col].ref];
}

Value Relation::RowView::value(size_t col) const {
  return rel_->CellToValue(cells_[col]);
}

bool Relation::RowView::Equals(size_t col, const Value& v) const {
  return rel_->CellEqualsValue(cells_[col], v);
}

Tuple Relation::RowView::ToTuple() const {
  Tuple t;
  t.reserve(n_);
  for (size_t i = 0; i < n_; ++i) t.push_back(value(i));
  return t;
}

// ----------------------------------------------------- cell primitives

Value Relation::CellToValue(const Cell& c) const {
  switch (c.tag) {
    case Value::Kind::kNull:
      return Value();
    case Value::Kind::kInt:
      return Value(c.i);
    case Value::Kind::kDouble:
      return Value(c.d);
    case Value::Kind::kString:
      return Value(string_pool_[c.ref]);
    case Value::Kind::kDoubleVector:
      return Value(vec_pool_[c.ref]);
  }
  return Value();
}

bool Relation::CellEqualsValue(const Cell& c, const Value& v) const {
  if (c.tag != v.kind()) return false;
  switch (c.tag) {
    case Value::Kind::kNull:
      return true;
    case Value::Kind::kInt:
      return c.i == v.AsInt();
    case Value::Kind::kDouble:
      return c.d == v.AsDouble();
    case Value::Kind::kString:
      return string_pool_[c.ref] == v.AsString();
    case Value::Kind::kDoubleVector:
      return vec_pool_[c.ref] == v.AsDoubleVector();
  }
  return false;
}

size_t Relation::CellHash(const Cell& c) const {
  const size_t seed = KindSeed(c.tag);
  switch (c.tag) {
    case Value::Kind::kNull:
      return HashCombine(seed, 0);
    case Value::Kind::kInt:
      return HashCombine(seed, std::hash<int64_t>()(c.i));
    case Value::Kind::kDouble:
      return HashCombine(seed, std::hash<double>()(c.d));
    case Value::Kind::kString:
      return HashCombine(seed, string_hashes_[c.ref]);
    case Value::Kind::kDoubleVector:
      return vec_hashes_[c.ref];
  }
  return seed;
}

size_t Relation::RowHash(uint32_t i) const {
  const uint32_t begin = row_begin_[i], end = row_begin_[i + 1];
  size_t seed = end - begin;
  for (uint32_t c = begin; c < end; ++c) {
    seed ^= CellHash(cells_[c]) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
            (seed >> 2);
  }
  return seed;
}

bool Relation::RowEqualsTuple(uint32_t i, const Tuple& t) const {
  const uint32_t begin = row_begin_[i], end = row_begin_[i + 1];
  if (end - begin != t.size()) return false;
  for (uint32_t c = begin; c < end; ++c) {
    if (!CellEqualsValue(cells_[c], t[c - begin])) return false;
  }
  return true;
}

bool Relation::RowEqualsRow(uint32_t a, uint32_t b) const {
  const uint32_t abegin = row_begin_[a], aend = row_begin_[a + 1];
  const uint32_t bbegin = row_begin_[b], bend = row_begin_[b + 1];
  if (aend - abegin != bend - bbegin) return false;
  for (uint32_t k = 0; k < aend - abegin; ++k) {
    const Cell& ca = cells_[abegin + k];
    const Cell& cb = cells_[bbegin + k];
    if (ca.tag != cb.tag) return false;
    switch (ca.tag) {
      case Value::Kind::kNull:
        break;
      case Value::Kind::kInt:
        if (ca.i != cb.i) return false;
        break;
      case Value::Kind::kDouble:
        if (ca.d != cb.d) return false;
        break;
      case Value::Kind::kString:
      case Value::Kind::kDoubleVector:
        // Interned: equal payloads share one pool id.
        if (ca.ref != cb.ref) return false;
        break;
    }
  }
  return true;
}

uint32_t Relation::InternString(const std::string& s) {
  auto it = string_ids_.find(std::string_view(s));
  if (it != string_ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(string_pool_.size());
  string_pool_.push_back(s);
  string_hashes_.push_back(std::hash<std::string>()(string_pool_.back()));
  string_ids_.emplace(std::string_view(string_pool_.back()), id);
  return id;
}

uint32_t Relation::InternDoubleVector(const std::vector<double>& v) {
  size_t h = KindSeed(Value::Kind::kDoubleVector);
  for (double d : v) h = HashCombine(h, std::hash<double>()(d));
  auto& candidates = vec_ids_[h];
  for (uint32_t id : candidates) {
    if (vec_pool_[id] == v) return id;
  }
  const uint32_t id = static_cast<uint32_t>(vec_pool_.size());
  vec_pool_.push_back(v);
  vec_hashes_.push_back(h);
  candidates.push_back(id);
  return id;
}

uint32_t Relation::EncodeRow(const Tuple& t) {
  for (const Value& v : t) {
    Cell c;
    c.tag = v.kind();
    switch (v.kind()) {
      case Value::Kind::kNull:
        c.i = 0;
        break;
      case Value::Kind::kInt:
        c.i = v.AsInt();
        break;
      case Value::Kind::kDouble:
        c.d = v.AsDouble();
        break;
      case Value::Kind::kString:
        c.ref = InternString(v.AsString());
        break;
      case Value::Kind::kDoubleVector:
        c.ref = InternDoubleVector(v.AsDoubleVector());
        break;
    }
    cells_.push_back(c);
  }
  row_begin_.push_back(static_cast<uint32_t>(cells_.size()));
  return static_cast<uint32_t>(row_begin_.size() - 2);
}

// ------------------------------------------------------------ mutation

bool Relation::Insert(const Tuple& t) {
  // Duplicate check without storing: hash the candidate via the probe
  // sentinel, then commit only when new.
  probe_ = &t;
  if (dedup_.find(kProbeIdx) != dedup_.end()) {
    probe_ = nullptr;
    return false;
  }
  probe_ = nullptr;
  const uint32_t idx = EncodeRow(t);
  dedup_.insert(idx);
  byte_size_ += TupleByteSize(t);
  ++version_;
  // Extend any live indexes so Probe results stay complete.
  for (auto& [col, index] : indexes_) {
    if (index.indexed_up_to == idx) {
      index.buckets[CellToValue(cells_[row_begin_[idx] + col])].push_back(
          idx);
      index.indexed_up_to = idx + 1;
    }
  }
  return true;
}

bool Relation::Contains(const Tuple& t) const {
  auto* self = const_cast<Relation*>(this);
  self->probe_ = &t;
  const bool found = self->dedup_.find(kProbeIdx) != self->dedup_.end();
  self->probe_ = nullptr;
  return found;
}

const std::vector<uint32_t>& Relation::Probe(int col, const Value& v) {
  static const std::vector<uint32_t> kEmpty;
  ColumnIndex& index = indexes_[col];
  while (index.indexed_up_to < size()) {
    const uint32_t i = static_cast<uint32_t>(index.indexed_up_to);
    index.buckets[CellToValue(cells_[row_begin_[i] + col])].push_back(i);
    ++index.indexed_up_to;
  }
  auto it = index.buckets.find(v);
  return it == index.buckets.end() ? kEmpty : it->second;
}

bool Relation::ReplaceAll(std::vector<Tuple> tuples) {
  // Deduplicate the input so the no-change check compares sets.
  std::unordered_set<Tuple, TupleHash> incoming(tuples.begin(), tuples.end());
  if (incoming.size() == size()) {
    bool same = true;
    for (const Tuple& t : incoming) {
      if (!Contains(t)) {
        same = false;
        break;
      }
    }
    if (same) return false;
  }
  Clear();
  for (const Tuple& t : incoming) Insert(t);
  return true;
}

void Relation::RemoveIf(const std::function<bool(const Tuple&)>& pred) {
  std::vector<Tuple> kept;
  kept.reserve(size());
  for (size_t i = 0; i < size(); ++i) {
    Tuple t = TupleAt(i);
    if (!pred(t)) kept.push_back(std::move(t));
  }
  Clear();
  for (const Tuple& t : kept) Insert(t);
}

void Relation::Clear() {
  dedup_.clear();
  cells_.clear();
  row_begin_.assign(1, 0);
  indexes_.clear();
  byte_size_ = 0;
  ++version_;
  ++epoch_;
}

std::vector<std::string> Relation::ToSortedStrings() const {
  std::vector<std::string> out;
  out.reserve(size());
  for (size_t i = 0; i < size(); ++i) {
    out.push_back(TupleToString(TupleAt(i)));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ariadne
