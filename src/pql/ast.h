#ifndef ARIADNE_PQL_AST_H_
#define ARIADNE_PQL_AST_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "pql/diagnostics.h"

namespace ariadne {

/// A PQL term: variable, constant, named parameter ($eps, bound before
/// analysis), or arithmetic expression over terms.
struct Term {
  enum class Kind { kVariable, kConstant, kParameter, kArith };

  Kind kind = Kind::kConstant;
  std::string name;                ///< variable or parameter name
  Value constant;                  ///< kConstant payload
  char op = 0;                     ///< kArith: one of + - * /
  std::shared_ptr<Term> lhs, rhs;  ///< kArith children
  Span span;                       ///< source extent of this term

  static Term Var(std::string name);
  static Term Const(Value v);
  static Term Param(std::string name);
  static Term Arith(char op, Term lhs, Term rhs);

  bool IsVar() const { return kind == Kind::kVariable; }

  /// Adds every variable occurring in this term to `out`.
  void CollectVars(std::set<std::string>& out) const;

  /// True if any kParameter remains (query not yet fully bound).
  bool HasParameter() const;

  std::string ToString() const;
};

/// θ of a comparison predicate t1 θ t2 (paper §4.2).
enum class ComparisonOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* ComparisonOpToString(ComparisonOp op);

/// Relational atom `name(args...)`, possibly negated. The first argument
/// is the location specifier (paper §4.2). Function/predicate UDF calls
/// are parsed as atoms and reclassified during analysis.
struct AtomLiteral {
  std::string predicate;
  std::vector<Term> args;
  bool negated = false;
  Span name_span;  ///< the predicate name token
  Span span;       ///< full extent incl. negation and ')'

  std::string ToString() const;
};

/// Comparison predicate t1 θ t2. `=` with one unbound variable side acts
/// as a binding (assignment) during evaluation, e.g. `j = i - 1`.
struct ComparisonLiteral {
  Term lhs;
  ComparisonOp op = ComparisonOp::kEq;
  Term rhs;
  Span span;  ///< full extent `lhs op rhs`

  std::string ToString() const;
};

/// One conjunct of a rule body.
struct BodyLiteral {
  enum class Kind { kAtom, kComparison };

  Kind kind = Kind::kAtom;
  AtomLiteral atom;
  ComparisonLiteral comparison;

  static BodyLiteral MakeAtom(AtomLiteral a);
  static BodyLiteral MakeComparison(ComparisonLiteral c);

  /// Full source extent of whichever alternative this literal holds.
  const Span& span() const {
    return kind == Kind::kAtom ? atom.span : comparison.span;
  }

  std::string ToString() const;
};

/// Aggregation functions allowed in rule heads (paper §4.2 plus AVG).
enum class AggregateFn { kCount, kSum, kMin, kMax, kAvg };

const char* AggregateFnToString(AggregateFn fn);

/// A head argument: plain term or AGGR(term).
struct HeadTerm {
  bool is_aggregate = false;
  Term term;                              ///< plain term (may be arithmetic)
  AggregateFn aggregate = AggregateFn::kCount;  ///< when is_aggregate
  Term aggregate_arg;                     ///< variable under the aggregate
  Span span;                              ///< source extent

  std::string ToString() const;
};

/// One Datalog rule `head(loc, terms...) <- body.`
struct Rule {
  std::string head_predicate;
  std::vector<HeadTerm> head;
  std::vector<BodyLiteral> body;
  Span name_span;  ///< the head predicate name token
  Span span;       ///< full extent from head name through '.'

  bool HasAggregate() const;
  std::string ToString() const;
};

/// A PQL query: a collection of rules (paper §4.1).
struct Program {
  std::vector<Rule> rules;

  /// Replaces $name parameters with constants. Errors on parameters
  /// missing from `params`; unused entries in `params` are ignored.
  Status BindParameters(
      const std::vector<std::pair<std::string, Value>>& params);

  /// Names of parameters still unbound anywhere in the program.
  std::set<std::string> UnboundParameters() const;

  std::string ToString() const;
};

}  // namespace ariadne

#endif  // ARIADNE_PQL_AST_H_
