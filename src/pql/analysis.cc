#include "pql/analysis.h"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_map>

#include "common/logging.h"

namespace ariadne {

const char* DirectionToString(Direction d) {
  switch (d) {
    case Direction::kLocal:
      return "local";
    case Direction::kForward:
      return "forward";
    case Direction::kBackward:
      return "backward";
    case Direction::kUndirected:
      return "undirected";
  }
  return "?";
}

int AnalyzedQuery::PredId(const std::string& name) const {
  for (size_t i = 0; i < preds_.size(); ++i) {
    if (preds_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

bool AnalyzedQuery::UsesEdb(EdbKind kind) const {
  for (const auto& p : preds_) {
    if (p.edb == kind) return true;
  }
  return false;
}

std::string AnalyzedQuery::DebugString() const {
  std::string out = "query direction=" + std::string(DirectionToString(direction_)) +
                    " vc_compatible=" + (vc_compatible_ ? "yes" : "no") +
                    " strata=" + std::to_string(num_strata_) + "\n";
  for (const auto& rule : rules_) {
    out += "  [s" + std::to_string(rule.stratum) + " " +
           DirectionToString(rule.direction) + "] " + rule.source_text + "\n";
  }
  for (int p : shipped_preds_) {
    out += "  ship: " + preds_[static_cast<size_t>(p)].name + "\n";
  }
  return out;
}

namespace {
struct AnalyzerOutputs {
  AnalyzeOptions options;
  std::vector<PredicateInfo> preds;
  std::vector<CompiledRule> rules;  // sorted by stratum
  int num_strata = 1;
  Direction direction = Direction::kLocal;
  bool vc_compatible = true;
  std::optional<FastCapturePlan> fast_capture;
};
}  // namespace

/// Friend of AnalyzedQuery; moves analyzer outputs into the result object.
class AnalyzedQueryBuilder {
 public:
  static AnalyzedQuery Build(AnalyzerOutputs outputs) {
    AnalyzedQuery out;
    out.options_ = outputs.options;
    out.preds_ = std::move(outputs.preds);
    out.rules_ = std::move(outputs.rules);
    out.num_strata_ = outputs.num_strata;
    out.direction_ = outputs.direction;
    out.vc_compatible_ = outputs.vc_compatible;
    for (size_t i = 0; i < out.preds_.size(); ++i) {
      if (out.preds_[i].is_idb()) {
        out.output_preds_.push_back(static_cast<int>(i));
      }
      if (out.preds_[i].shipped) {
        out.shipped_preds_.push_back(static_cast<int>(i));
      }
    }
    out.fast_capture_ = std::move(outputs.fast_capture);
    return out;
  }
};

namespace {

/// Builder state while compiling one rule.
struct RuleBuilder {
  CompiledRule rule;
  std::unordered_map<std::string, int> var_ids;

  int InternVar(const std::string& name) {
    auto it = var_ids.find(name);
    if (it != var_ids.end()) return it->second;
    const int id = static_cast<int>(rule.vars.size());
    rule.vars.push_back(name);
    var_ids.emplace(name, id);
    return id;
  }

  Result<int> InternTerm(const Term& term) {
    CTerm ct;
    switch (term.kind) {
      case Term::Kind::kVariable:
        ct.kind = CTerm::Kind::kVar;
        ct.var = InternVar(term.name);
        break;
      case Term::Kind::kConstant:
        ct.kind = CTerm::Kind::kConst;
        ct.constant = term.constant;
        break;
      case Term::Kind::kParameter:
        return Status::AnalysisError("unbound parameter $" + term.name +
                                     " (call BindParameters first)");
      case Term::Kind::kArith: {
        ct.kind = CTerm::Kind::kArith;
        ct.op = term.op;
        ARIADNE_ASSIGN_OR_RETURN(ct.lhs, InternTerm(*term.lhs));
        ARIADNE_ASSIGN_OR_RETURN(ct.rhs, InternTerm(*term.rhs));
        break;
      }
    }
    rule.term_pool.push_back(std::move(ct));
    return static_cast<int>(rule.term_pool.size() - 1);
  }

};

/// All dense var ids in term pool entry `idx` of `rule`.
void TermVars(const CompiledRule& rule, int idx, std::set<int>& out) {
  const CTerm& t = rule.term_pool[static_cast<size_t>(idx)];
  switch (t.kind) {
    case CTerm::Kind::kVar:
      out.insert(t.var);
      break;
    case CTerm::Kind::kArith:
      TermVars(rule, t.lhs, out);
      TermVars(rule, t.rhs, out);
      break;
    default:
      break;
  }
}

bool IsPlainVar(const CompiledRule& rule, int idx, int* var = nullptr) {
  const CTerm& t = rule.term_pool[static_cast<size_t>(idx)];
  if (t.kind != CTerm::Kind::kVar) return false;
  if (var != nullptr) *var = t.var;
  return true;
}

/// True when every variable of pool term `idx` is in `bound`.
bool TermBound(const CompiledRule& rule, int idx, const std::set<int>& bound) {
  std::set<int> vars;
  TermVars(rule, idx, vars);
  for (int v : vars) {
    if (bound.count(v) == 0) return false;
  }
  return true;
}

/// Collects unbound $parameters of a term with their spans.
void TermParams(const Term& term,
                std::vector<std::pair<std::string, Span>>& out) {
  switch (term.kind) {
    case Term::Kind::kParameter:
      out.emplace_back(term.name, term.span);
      break;
    case Term::Kind::kArith:
      TermParams(*term.lhs, out);
      TermParams(*term.rhs, out);
      break;
    default:
      break;
  }
}

class Analyzer {
 public:
  Analyzer(const Program& program, const Catalog& catalog,
           const UdfRegistry& udfs, const StoreSchema* store,
           const AnalyzeOptions& options, DiagnosticSink* sink)
      : program_(program),
        catalog_(catalog),
        udfs_(udfs),
        store_(store),
        options_(options),
        sink_(sink != nullptr ? sink : &own_sink_) {}

  Result<AnalyzedQuery> Run() {
    bad_.assign(program_.rules.size(), false);
    MarkParameterRules();
    CollectHeads();
    CompileRules();
    if (!HasErrors()) Stratify();
    if (!HasErrors()) PlanRules();
    if (!HasErrors()) {
      AnalyzeLocations();
      CheckAggregates();
    }
    if (HasErrors()) return first_error_;
    ExtractFastCapture();

    std::stable_sort(rules_.begin(), rules_.end(),
                     [](const CompiledRule& a, const CompiledRule& b) {
                       return a.stratum < b.stratum;
                     });
    AnalyzerOutputs outputs;
    outputs.options = options_;
    outputs.preds = std::move(preds_);
    outputs.rules = std::move(rules_);
    outputs.num_strata = num_strata_;
    outputs.direction = direction_;
    outputs.vc_compatible = vc_compatible_;
    outputs.fast_capture = std::move(fast_capture_);
    return AnalyzedQueryBuilder::Build(std::move(outputs));
  }

 private:
  bool HasErrors() const { return sink_->has_errors(); }

  /// Emits a diagnostic with a stable code and source span, and records
  /// the first error as the Status the legacy Result<> API returns.
  /// `status_code` preserves the historical error category (AnalysisError
  /// for most, Unsupported for mode/feature gaps the caller can act on).
  Status Err(StatusCode status_code, const char* code, const Span& span,
             std::string message) {
    sink_->Error(code, span, message);
    Status status(status_code, std::move(message));
    if (first_error_.ok()) first_error_ = status;
    return status;
  }

  int FindPred(const std::string& name) const {
    for (size_t i = 0; i < preds_.size(); ++i) {
      if (preds_[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

  Result<int> AddOrGetPred(const std::string& name, int arity, EdbKind edb,
                           const Span& span) {
    const int existing = FindPred(name);
    if (existing >= 0) {
      PredicateInfo& info = preds_[static_cast<size_t>(existing)];
      if (info.arity != arity) {
        return Err(StatusCode::kAnalysisError, "PQL2006", span,
                   "predicate " + name + " used with arities " +
                       std::to_string(info.arity) + " and " +
                       std::to_string(arity));
      }
      return existing;
    }
    PredicateInfo info;
    info.name = name;
    info.arity = arity;
    info.edb = edb;
    preds_.push_back(std::move(info));
    return static_cast<int>(preds_.size() - 1);
  }

  /// Reports every distinct unbound $parameter once (with the span of its
  /// first occurrence) and marks the rules mentioning parameters as bad so
  /// the remaining rules still compile and get linted.
  void MarkParameterRules() {
    std::set<std::string> reported;
    for (size_t r = 0; r < program_.rules.size(); ++r) {
      const Rule& rule = program_.rules[r];
      std::vector<std::pair<std::string, Span>> params;
      for (const HeadTerm& h : rule.head) {
        TermParams(h.term, params);
        TermParams(h.aggregate_arg, params);
      }
      for (const BodyLiteral& lit : rule.body) {
        if (lit.kind == BodyLiteral::Kind::kAtom) {
          for (const Term& t : lit.atom.args) TermParams(t, params);
        } else {
          TermParams(lit.comparison.lhs, params);
          TermParams(lit.comparison.rhs, params);
        }
      }
      if (params.empty()) continue;
      bad_[r] = true;
      for (const auto& [name, span] : params) {
        if (!reported.insert(name).second) continue;
        Err(StatusCode::kAnalysisError, "PQL2001", span,
            "unbound parameter $" + name +
                " (bind with --param or BindParameters)");
      }
    }
  }

  void CollectHeads() {
    for (size_t r = 0; r < program_.rules.size(); ++r) {
      if (bad_[r]) continue;
      const Rule& rule = program_.rules[r];
      if (rule.head.empty()) {
        Err(StatusCode::kAnalysisError, "PQL2020", rule.name_span,
            "rule with empty head: " + rule.ToString());
        bad_[r] = true;
        continue;
      }
      if (catalog_.Find(rule.head_predicate) != nullptr &&
          !options_.allow_transient) {
        Err(StatusCode::kAnalysisError, "PQL2002", rule.name_span,
            "cannot redefine built-in EDB " + rule.head_predicate);
        bad_[r] = true;
        continue;
      }
      if (udfs_.Find(rule.head_predicate) != nullptr) {
        Err(StatusCode::kAnalysisError, "PQL2003", rule.name_span,
            "cannot use UDF name as rule head: " + rule.head_predicate);
        bad_[r] = true;
        continue;
      }
      // Capture queries may re-derive Table-1 names (paper Query 2 derives
      // `value` from `vertex-value`); outside capture, redefining catalog
      // EDBs is rejected above. Capture heads shadow the catalog entry.
      const auto* schema = catalog_.Find(rule.head_predicate);
      if (schema != nullptr && IsTransientEdb(schema->kind)) {
        Err(StatusCode::kAnalysisError, "PQL2004", rule.name_span,
            "cannot redefine transient EDB " + rule.head_predicate);
        bad_[r] = true;
        continue;
      }
      if (schema != nullptr &&
          schema->arity != static_cast<int>(rule.head.size())) {
        Err(StatusCode::kAnalysisError, "PQL2005", rule.name_span,
            "capture rule redefines " + rule.head_predicate +
                " with wrong arity (built-in arity " +
                std::to_string(schema->arity) + ")");
        bad_[r] = true;
        continue;
      }
      auto pred = AddOrGetPred(rule.head_predicate,
                               static_cast<int>(rule.head.size()),
                               EdbKind::kNone, rule.name_span);
      if (!pred.ok()) {
        bad_[r] = true;
        continue;
      }
      head_preds_.insert(*pred);
    }
  }

  Result<int> ResolveBodyAtomPred(const AtomLiteral& atom,
                                  const std::string& rule_name) {
    // Heads shadow everything (a capture query deriving `value` reads the
    // transient EDB but writes its own IDB of the same name only when the
    // name differs; same-name recursion through Table-1 names is resolved
    // to the IDB).
    const int head_pred = FindPred(atom.predicate);
    if (head_pred >= 0 && head_preds_.count(head_pred) > 0) {
      if (preds_[static_cast<size_t>(head_pred)].arity !=
          static_cast<int>(atom.args.size())) {
        return Err(StatusCode::kAnalysisError, "PQL2006", atom.name_span,
                   "arity mismatch for " + atom.predicate + " in rule " +
                       rule_name + ": defined with " +
                       std::to_string(
                           preds_[static_cast<size_t>(head_pred)].arity) +
                       ", used with " + std::to_string(atom.args.size()));
      }
      return head_pred;
    }
    const EdbSchema* schema = catalog_.Find(atom.predicate);
    if (schema != nullptr) {
      if (IsTransientEdb(schema->kind) && !options_.allow_transient) {
        return Err(StatusCode::kAnalysisError, "PQL2007", atom.name_span,
                   "transient predicate " + atom.predicate +
                       " is only available during online/capture evaluation");
      }
      if (schema->arity != static_cast<int>(atom.args.size())) {
        return Err(StatusCode::kAnalysisError, "PQL2006", atom.name_span,
                   "arity mismatch for " + atom.predicate + ": expected " +
                       std::to_string(schema->arity) + ", got " +
                       std::to_string(atom.args.size()));
      }
      // Canonical name so aliases (receive-msg) share a predicate id.
      const std::string canonical = CanonicalEdbName(schema->kind);
      return AddOrGetPred(canonical, schema->arity, schema->kind,
                          atom.name_span);
    }
    if (store_ != nullptr) {
      const auto* entry = store_->Find(atom.predicate);
      if (entry != nullptr) {
        if (entry->arity != static_cast<int>(atom.args.size())) {
          return Err(StatusCode::kAnalysisError, "PQL2006", atom.name_span,
                     "arity mismatch for stored relation " + atom.predicate +
                         ": expected " + std::to_string(entry->arity) +
                         ", got " + std::to_string(atom.args.size()));
        }
        return AddOrGetPred(atom.predicate, entry->arity, EdbKind::kStored,
                            atom.name_span);
      }
    }
    return Err(StatusCode::kAnalysisError, "PQL2008", atom.name_span,
               "unknown predicate " + atom.predicate + " in rule " +
                   rule_name);
  }

  static std::string CanonicalEdbName(EdbKind kind) {
    switch (kind) {
      case EdbKind::kSuperstep:
        return "superstep";
      case EdbKind::kValue:
        return "value";
      case EdbKind::kEvolution:
        return "evolution";
      case EdbKind::kSendMessage:
        return "send-message";
      case EdbKind::kReceiveMessage:
        return "receive-message";
      case EdbKind::kEdge:
        return "edge";
      case EdbKind::kEdgeValue:
        return "edge-value";
      case EdbKind::kVertexValueNow:
        return "vertex-value";
      case EdbKind::kSendNow:
        return "send";
      case EdbKind::kReceiveNow:
        return "receive";
      default:
        return "?";
    }
  }

  /// Compiles one rule; errors have already been emitted to the sink when
  /// this returns non-OK (the caller just drops the rule and continues).
  Result<CompiledRule> CompileOneRule(const Rule& rule) {
    RuleBuilder rb;
    rb.rule.source_text = rule.ToString();
    rb.rule.span = rule.span;
    rb.rule.name_span = rule.name_span;
    rb.rule.head_pred = FindPred(rule.head_predicate);
    rb.rule.has_aggregate = rule.HasAggregate();

    // Head terms; head[0] is the location specifier and must be a
    // variable (paper §4.2).
    if (rule.head[0].is_aggregate ||
        rule.head[0].term.kind != Term::Kind::kVariable) {
      return Err(StatusCode::kAnalysisError, "PQL2014", rule.head[0].span,
                 "head location specifier must be a variable in rule " +
                     rule.head_predicate);
    }
    for (const HeadTerm& h : rule.head) {
      CHeadTerm ch;
      ch.is_aggregate = h.is_aggregate;
      if (h.is_aggregate) {
        ch.aggregate = h.aggregate;
        ARIADNE_ASSIGN_OR_RETURN(ch.aggregate_arg,
                                 rb.InternTerm(h.aggregate_arg));
      } else {
        ARIADNE_ASSIGN_OR_RETURN(ch.term, rb.InternTerm(h.term));
      }
      rb.rule.head.push_back(ch);
    }
    rb.rule.head_loc_var =
        rb.rule.term_pool[static_cast<size_t>(rb.rule.head[0].term)].var;

    // Body literals.
    for (const BodyLiteral& lit : rule.body) {
      CLiteral cl;
      cl.span = lit.span();
      if (lit.kind == BodyLiteral::Kind::kComparison) {
        cl.kind = CLiteral::Kind::kComparison;
        cl.cmp_op = lit.comparison.op;
        ARIADNE_ASSIGN_OR_RETURN(cl.cmp_lhs,
                                 rb.InternTerm(lit.comparison.lhs));
        ARIADNE_ASSIGN_OR_RETURN(cl.cmp_rhs,
                                 rb.InternTerm(lit.comparison.rhs));
        rb.rule.body.push_back(std::move(cl));
        continue;
      }
      const AtomLiteral& atom = lit.atom;
      const Udf* udf = udfs_.Find(atom.predicate);
      if (udf != nullptr) {
        if (udf->arity != static_cast<int>(atom.args.size())) {
          return Err(StatusCode::kAnalysisError, "PQL2009", atom.name_span,
                     "UDF " + atom.predicate + " expects " +
                         std::to_string(udf->arity) + " arguments, got " +
                         std::to_string(atom.args.size()));
        }
        if (atom.negated && udf->kind == UdfKind::kFunction) {
          return Err(StatusCode::kAnalysisError, "PQL2010", lit.span(),
                     "cannot negate function UDF " + atom.predicate);
        }
        cl.kind = CLiteral::Kind::kUdf;
        cl.udf = udf;
        cl.negated = atom.negated;
        for (const Term& t : atom.args) {
          ARIADNE_ASSIGN_OR_RETURN(int idx, rb.InternTerm(t));
          cl.udf_args.push_back(idx);
        }
        rb.rule.body.push_back(std::move(cl));
        continue;
      }
      cl.kind = CLiteral::Kind::kAtom;
      cl.negated = atom.negated;
      ARIADNE_ASSIGN_OR_RETURN(cl.pred,
                               ResolveBodyAtomPred(atom, rule.head_predicate));
      for (const Term& t : atom.args) {
        ARIADNE_ASSIGN_OR_RETURN(int idx, rb.InternTerm(t));
        cl.args.push_back(idx);
      }
      rb.rule.body.push_back(std::move(cl));
    }

    // Distinct predicate reads for evaluation watermarks.
    std::set<int> reads;
    for (const CLiteral& cl : rb.rule.body) {
      if (cl.kind == CLiteral::Kind::kAtom) reads.insert(cl.pred);
    }
    rb.rule.body_preds.assign(reads.begin(), reads.end());
    return std::move(rb.rule);
  }

  void CompileRules() {
    for (size_t r = 0; r < program_.rules.size(); ++r) {
      if (bad_[r]) continue;
      auto compiled = CompileOneRule(program_.rules[r]);
      if (!compiled.ok()) {
        bad_[r] = true;
        continue;
      }
      rules_.push_back(std::move(*compiled));
    }
  }

  void Stratify() {
    // stratum[p]: EDBs at 0; head strata grow through negative edges
    // (negation, dependencies of aggregate rules, and reads of aggregate
    // heads — consumers must evaluate after the aggregate stabilizes).
    std::set<int> aggregate_heads;
    for (const CompiledRule& rule : rules_) {
      if (rule.has_aggregate) aggregate_heads.insert(rule.head_pred);
    }
    const int n = static_cast<int>(preds_.size());
    std::vector<int> stratum(static_cast<size_t>(n), 0);
    const int limit = n + 1;
    bool changed = true;
    int guard = 0;
    while (changed) {
      changed = false;
      if (++guard > limit * static_cast<int>(rules_.size() + 1) + 4) {
        Err(StatusCode::kAnalysisError, "PQL2011", Span{},
            "program is not stratifiable (negation or aggregation through "
            "recursion)");
        return;
      }
      for (const CompiledRule& rule : rules_) {
        int& head_stratum = stratum[static_cast<size_t>(rule.head_pred)];
        for (const CLiteral& cl : rule.body) {
          if (cl.kind != CLiteral::Kind::kAtom) continue;
          if (!preds_[static_cast<size_t>(cl.pred)].is_idb()) continue;
          const int dep = stratum[static_cast<size_t>(cl.pred)];
          const bool negative = cl.negated || rule.has_aggregate ||
                                aggregate_heads.count(cl.pred) > 0;
          const int required = negative ? dep + 1 : dep;
          if (required > head_stratum) {
            if (required > limit) {
              Err(StatusCode::kAnalysisError, "PQL2011", rule.span,
                  "program is not stratifiable (negation or aggregation "
                  "through recursion involving " +
                      preds_[static_cast<size_t>(rule.head_pred)].name + ")");
              return;
            }
            head_stratum = required;
            changed = true;
          }
        }
      }
    }
    num_strata_ = 1;
    for (CompiledRule& rule : rules_) {
      rule.stratum = stratum[static_cast<size_t>(rule.head_pred)];
      num_strata_ = std::max(num_strata_, rule.stratum + 1);
    }
    for (int p = 0; p < n; ++p) {
      preds_[static_cast<size_t>(p)].stratum = stratum[static_cast<size_t>(p)];
    }
  }

  void PlanRules() {
    for (size_t r = 0; r < rules_.size(); ++r) {
      PlanOneRule(rules_[r]);  // errors accumulate; bad plans are reported
    }
  }

  Status PlanOneRule(CompiledRule& rule) {
    std::set<int> bound;
    std::vector<bool> used(rule.body.size(), false);
    rule.eval_order.clear();
    rule.planned = options_.plan_joins;

    auto comparison_usable = [&](const CLiteral& cl, bool* binds,
                                 int* bind_var) {
      const bool lhs_bound = TermBound(rule, cl.cmp_lhs, bound);
      const bool rhs_bound = TermBound(rule, cl.cmp_rhs, bound);
      if (lhs_bound && rhs_bound) {
        *binds = false;
        return true;
      }
      if (cl.cmp_op != ComparisonOp::kEq) return false;
      int var;
      if (!lhs_bound && rhs_bound && IsPlainVar(rule, cl.cmp_lhs, &var) &&
          bound.count(var) == 0) {
        *binds = true;
        *bind_var = var;
        return true;
      }
      if (lhs_bound && !rhs_bound && IsPlainVar(rule, cl.cmp_rhs, &var) &&
          bound.count(var) == 0) {
        *binds = true;
        *bind_var = var;
        return true;
      }
      return false;
    };

    auto udf_usable = [&](const CLiteral& cl, bool* binds, int* bind_var) {
      const size_t n_in = cl.udf->kind == UdfKind::kFunction
                              ? cl.udf_args.size() - 1
                              : cl.udf_args.size();
      for (size_t i = 0; i < n_in; ++i) {
        if (!TermBound(rule, cl.udf_args[i], bound)) return false;
      }
      if (cl.udf->kind == UdfKind::kPredicate) {
        *binds = false;
        return true;
      }
      const int out = cl.udf_args.back();
      if (TermBound(rule, out, bound)) {
        *binds = false;
        return true;
      }
      int var;
      if (IsPlainVar(rule, out, &var)) {
        *binds = true;
        *bind_var = var;
        return true;
      }
      return false;
    };

    auto atom_usable = [&](const CLiteral& cl) {
      // Every non-plain-var argument must be fully evaluable.
      for (int arg : cl.args) {
        if (!IsPlainVar(rule, arg) && !TermBound(rule, arg, bound)) return false;
      }
      // edge-value is a weight lookup: its superstep argument is a
      // pass-through and must already be bound (weights carry no step).
      if (preds_[static_cast<size_t>(cl.pred)].edb == EdbKind::kEdgeValue &&
          !TermBound(rule, cl.args[3], bound)) {
        return false;
      }
      return true;
    };

    auto negated_usable = [&](const CLiteral& cl) {
      for (int arg : cl.args) {
        if (!TermBound(rule, arg, bound)) return false;
      }
      return true;
    };

    auto bind_atom_vars = [&](const CLiteral& cl) {
      for (int arg : cl.args) {
        int var;
        if (IsPlainVar(rule, arg, &var)) bound.insert(var);
      }
    };

    size_t remaining = rule.body.size();
    while (remaining > 0) {
      int picked = -1;
      bool picked_binds = false;
      int picked_bind_var = -1;
      // 1. Comparisons and UDFs ready to filter or bind.
      for (size_t i = 0; i < rule.body.size() && picked < 0; ++i) {
        if (used[i]) continue;
        const CLiteral& cl = rule.body[i];
        bool binds = false;
        int bind_var = -1;
        if (cl.kind == CLiteral::Kind::kComparison &&
            comparison_usable(cl, &binds, &bind_var)) {
          picked = static_cast<int>(i);
          picked_binds = binds;
          picked_bind_var = bind_var;
        } else if (cl.kind == CLiteral::Kind::kUdf &&
                   udf_usable(cl, &binds, &bind_var)) {
          picked = static_cast<int>(i);
          picked_binds = binds;
          picked_bind_var = bind_var;
        }
      }
      // 2. Usable positive atom. Legacy: most bound argument positions
      // wins. Planned (sideways information passing): among atoms with
      // at least one bound column to probe on, the one introducing the
      // fewest unbound positions wins — it has the smallest expected
      // fan-out, so the most selective join runs earliest and later
      // atoms see more bound columns to probe on. An atom with no bound
      // argument is a full scan regardless of arity, so all-unbound
      // atoms rank below any probe-able one and keep body order among
      // themselves. Ties fall back to most-bound, then body order. Both
      // orders are safe (any usable atom preserves range restriction)
      // and produce identical fixpoints (set semantics).
      if (picked < 0) {
        int best_bound_args = -1;
        int best_unbound_args = std::numeric_limits<int>::max();
        for (size_t i = 0; i < rule.body.size(); ++i) {
          if (used[i]) continue;
          const CLiteral& cl = rule.body[i];
          if (cl.kind != CLiteral::Kind::kAtom || cl.negated) continue;
          if (!atom_usable(cl)) continue;
          int n_bound = 0;
          for (int arg : cl.args) {
            if (TermBound(rule, arg, bound)) ++n_bound;
          }
          // Full scans sort after every probe-able atom, in body order.
          const int n_unbound =
              n_bound == 0 ? std::numeric_limits<int>::max() - 1
                           : static_cast<int>(cl.args.size()) - n_bound;
          const bool better =
              options_.plan_joins
                  ? (n_unbound < best_unbound_args ||
                     (n_unbound == best_unbound_args &&
                      n_bound > best_bound_args))
                  : n_bound > best_bound_args;
          if (better) {
            best_bound_args = n_bound;
            best_unbound_args = n_unbound;
            picked = static_cast<int>(i);
          }
        }
        if (picked >= 0) bind_atom_vars(rule.body[static_cast<size_t>(picked)]);
      }
      // 3. Fully bound negated atoms.
      if (picked < 0) {
        for (size_t i = 0; i < rule.body.size(); ++i) {
          if (used[i]) continue;
          const CLiteral& cl = rule.body[i];
          if (cl.kind == CLiteral::Kind::kAtom && cl.negated &&
              negated_usable(cl)) {
            picked = static_cast<int>(i);
            break;
          }
        }
      }
      if (picked < 0) {
        return Err(StatusCode::kAnalysisError, "PQL2012", rule.span,
                   "rule is not range-restricted (cannot order body literals "
                   "safely): " + rule.source_text);
      }
      if (picked_binds) bound.insert(picked_bind_var);
      used[static_cast<size_t>(picked)] = true;
      rule.eval_order.push_back(static_cast<size_t>(picked));
      --remaining;
    }

    // Safety: every head variable must be bound by the body.
    std::set<int> head_vars;
    for (const CHeadTerm& h : rule.head) {
      if (h.is_aggregate) {
        TermVars(rule, h.aggregate_arg, head_vars);
      } else {
        TermVars(rule, h.term, head_vars);
      }
    }
    for (int v : head_vars) {
      if (bound.count(v) == 0) {
        return Err(StatusCode::kAnalysisError, "PQL2013", rule.span,
                   "unsafe rule: head variable '" +
                       rule.vars[static_cast<size_t>(v)] +
                       "' is not bound by the body: " + rule.source_text);
      }
    }

    // Existential-subgoal analysis: a positive atom whose newly bound
    // variables are never used later (nor in the head) contributes at
    // most one distinct continuation, so evaluation may stop at its
    // first unifying tuple. Invalid for aggregate rules, where the
    // multiset of full valuations feeds the aggregates.
    rule.existential.assign(rule.eval_order.size(), 0);
    if (!rule.has_aggregate) {
      auto literal_vars = [&](size_t body_idx, std::set<int>& out) {
        const CLiteral& l = rule.body[body_idx];
        switch (l.kind) {
          case CLiteral::Kind::kAtom:
            for (int arg : l.args) TermVars(rule, arg, out);
            break;
          case CLiteral::Kind::kComparison:
            TermVars(rule, l.cmp_lhs, out);
            TermVars(rule, l.cmp_rhs, out);
            break;
          case CLiteral::Kind::kUdf:
            for (int arg : l.udf_args) TermVars(rule, arg, out);
            break;
        }
      };
      std::set<int> sim_bound;
      for (size_t k = 0; k < rule.eval_order.size(); ++k) {
        const CLiteral& l = rule.body[rule.eval_order[k]];
        if (l.kind == CLiteral::Kind::kAtom && !l.negated) {
          std::set<int> new_vars;
          for (int arg : l.args) {
            int v;
            if (IsPlainVar(rule, arg, &v) && sim_bound.count(v) == 0) {
              new_vars.insert(v);
            }
          }
          bool live = false;
          for (int v : new_vars) {
            if (head_vars.count(v) > 0) {
              live = true;
              break;
            }
          }
          for (size_t j = k + 1; j < rule.eval_order.size() && !live; ++j) {
            std::set<int> later;
            literal_vars(rule.eval_order[j], later);
            for (int v : new_vars) {
              if (later.count(v) > 0) {
                live = true;
                break;
              }
            }
          }
          rule.existential[k] = live ? 0 : 1;
          sim_bound.insert(new_vars.begin(), new_vars.end());
        } else if (l.kind == CLiteral::Kind::kComparison &&
                   l.cmp_op == ComparisonOp::kEq) {
          int v;
          if (IsPlainVar(rule, l.cmp_lhs, &v)) sim_bound.insert(v);
          if (IsPlainVar(rule, l.cmp_rhs, &v)) sim_bound.insert(v);
        } else if (l.kind == CLiteral::Kind::kUdf &&
                   l.udf->kind == UdfKind::kFunction) {
          int v;
          if (IsPlainVar(rule, l.udf_args.back(), &v)) sim_bound.insert(v);
        }
      }
    }
    return Status::OK();
  }

  void AnalyzeLocations() {
    struct ShipRequest {
      int pred;
      ShipRouting routing;
    };
    std::vector<ShipRequest> ships;
    direction_ = Direction::kLocal;
    vc_compatible_ = true;

    for (size_t r = 0; r < rules_.size(); ++r) {
      CompiledRule& rule = rules_[r];
      Direction rule_dir = Direction::kLocal;
      bool rule_unguarded = false;

      // Local variable set = variables of non-remote atoms (first pass
      // decides remoteness; static EDBs are local everywhere).
      auto atom_is_located = [&](const CLiteral& cl) {
        return cl.kind == CLiteral::Kind::kAtom &&
               !IsStaticEdb(preds_[static_cast<size_t>(cl.pred)].edb);
      };

      bool rule_ok = true;
      for (CLiteral& cl : rule.body) {
        if (!atom_is_located(cl)) continue;
        if (cl.args.empty()) {
          Err(StatusCode::kAnalysisError, "PQL2015", cl.span,
              "located atom with no arguments in: " + rule.source_text);
          rule_ok = false;
          continue;
        }
        int loc;
        if (!IsPlainVar(rule, cl.args[0], &loc)) {
          Err(StatusCode::kAnalysisError, "PQL2016", cl.span,
              "location specifier (first argument) must be a variable in: " +
                  rule.source_text);
          rule_ok = false;
          continue;
        }
        cl.loc_var = loc;
        cl.remote = loc != rule.head_loc_var;
      }
      if (!rule_ok) continue;

      std::set<int> local_vars;
      for (const CLiteral& cl : rule.body) {
        if (cl.kind != CLiteral::Kind::kAtom || cl.negated || cl.remote) continue;
        for (int arg : cl.args) {
          int v;
          if (IsPlainVar(rule, arg, &v)) local_vars.insert(v);
        }
      }

      for (CLiteral& cl : rule.body) {
        if (!atom_is_located(cl) || !cl.remote) continue;
        // Find a guard atom linking (head_loc, remote_loc).
        Direction guard_dir = Direction::kUndirected;
        ShipRouting routing = ShipRouting::kAlongMessages;
        bool guarded = false;
        for (const CLiteral& g : rule.body) {
          if (g.kind != CLiteral::Kind::kAtom || g.negated || g.remote ||
              &g == &cl) {
            continue;
          }
          if (g.args.size() < 2) continue;
          int a0, a1;
          if (!IsPlainVar(rule, g.args[0], &a0) || !IsPlainVar(rule, g.args[1], &a1)) {
            continue;
          }
          if (a0 != rule.head_loc_var || a1 != cl.loc_var) continue;
          const EdbKind gk = preds_[static_cast<size_t>(g.pred)].edb;
          if (gk == EdbKind::kReceiveMessage || gk == EdbKind::kReceiveNow) {
            guard_dir = Direction::kForward;
            routing = ShipRouting::kAlongMessages;
            guarded = true;
            break;  // message guards take precedence over edge-like guards
          }
          if (gk == EdbKind::kSendMessage || gk == EdbKind::kSendNow) {
            guard_dir = Direction::kBackward;
            routing = ShipRouting::kAlongReverseMessages;
            guarded = true;
            break;
          }
          // Edge-like guard (static edge, stored prov-edges, any local
          // binary-prefix atom): direction from temporal inference.
          Direction temporal = InferTemporalDirection(rule, cl);
          if (temporal != Direction::kUndirected) {
            guard_dir = temporal;
            routing = temporal == Direction::kForward
                          ? ShipRouting::kAlongOutEdges
                          : ShipRouting::kAlongInEdges;
            guarded = true;
            // keep scanning: a message guard later in the body wins
          }
        }
        if (!guarded) {
          rule_unguarded = true;
          continue;
        }
        // Merge into the rule direction.
        if (rule_dir == Direction::kLocal) {
          rule_dir = guard_dir;
        } else if (rule_dir != guard_dir) {
          rule_dir = Direction::kUndirected;
        }
        ships.push_back(ShipRequest{cl.pred, routing});
      }

      if (rule_unguarded) {
        rule.direction = Direction::kUndirected;
        vc_compatible_ = false;
      } else {
        rule.direction = rule_dir;
      }

      // Fold into query direction.
      if (rule.direction == Direction::kUndirected) {
        direction_ = Direction::kUndirected;
      } else if (rule.direction != Direction::kLocal) {
        if (direction_ == Direction::kLocal) {
          direction_ = rule.direction;
        } else if (direction_ != rule.direction) {
          direction_ = Direction::kUndirected;
        }
      }
    }

    // Apply ship requests; conflicting routings are unsupported.
    for (const auto& req : ships) {
      PredicateInfo& info = preds_[static_cast<size_t>(req.pred)];
      if (info.shipped && info.routing != req.routing) {
        Err(StatusCode::kUnsupported, "PQL2017", Span{},
            "relation " + info.name +
                " is shipped along conflicting routes; split the query");
        continue;
      }
      info.shipped = true;
      info.routing = req.routing;
    }
  }

  /// For an edge-guarded remote atom, infer direction from a comparison
  /// linking a remote-atom variable to a local variable with a constant
  /// offset: `j = i + 1` (remote j later) => backward; `j = i - 1` =>
  /// forward (paper Queries 12 and 3 respectively).
  Direction InferTemporalDirection(const CompiledRule& rule,
                                   const CLiteral& remote_atom) {
    std::set<int> remote_vars;
    for (int arg : remote_atom.args) TermVars(rule, arg, remote_vars);

    std::set<int> local_vars;
    for (const CLiteral& cl : rule.body) {
      if (cl.kind != CLiteral::Kind::kAtom || cl.remote || cl.negated) continue;
      for (int arg : cl.args) TermVars(rule, arg, local_vars);
    }

    auto term_offset_of_var = [&](int term_idx, int* var,
                                  double* offset) -> bool {
      // Matches v, v + c, v - c, c + v.
      const CTerm& t = rule.term_pool[static_cast<size_t>(term_idx)];
      if (t.kind == CTerm::Kind::kVar) {
        *var = t.var;
        *offset = 0;
        return true;
      }
      if (t.kind != CTerm::Kind::kArith || (t.op != '+' && t.op != '-')) {
        return false;
      }
      const CTerm& l = rule.term_pool[static_cast<size_t>(t.lhs)];
      const CTerm& rt = rule.term_pool[static_cast<size_t>(t.rhs)];
      if (l.kind == CTerm::Kind::kVar && rt.kind == CTerm::Kind::kConst &&
          rt.constant.is_numeric()) {
        *var = l.var;
        *offset = rt.constant.ToDouble().ValueOr(0);
        if (t.op == '-') *offset = -*offset;
        return true;
      }
      if (t.op == '+' && l.kind == CTerm::Kind::kConst &&
          l.constant.is_numeric() && rt.kind == CTerm::Kind::kVar) {
        *var = rt.var;
        *offset = l.constant.ToDouble().ValueOr(0);
        return true;
      }
      return false;
    };

    for (const CLiteral& cl : rule.body) {
      if (cl.kind != CLiteral::Kind::kComparison ||
          cl.cmp_op != ComparisonOp::kEq) {
        continue;
      }
      int v1, v2;
      double o1, o2;
      if (!term_offset_of_var(cl.cmp_lhs, &v1, &o1) ||
          !term_offset_of_var(cl.cmp_rhs, &v2, &o2)) {
        continue;
      }
      // v1 + o1 == v2 + o2  =>  v1 == v2 + (o2 - o1)
      double delta = o2 - o1;
      int remote_var = -1;
      if (remote_vars.count(v1) > 0 && local_vars.count(v2) > 0) {
        remote_var = v1;
      } else if (remote_vars.count(v2) > 0 && local_vars.count(v1) > 0) {
        remote_var = v2;
        delta = -delta;
      } else {
        continue;
      }
      (void)remote_var;
      if (delta > 0) return Direction::kBackward;  // remote = local + c
      if (delta < 0) return Direction::kForward;
    }
    return Direction::kUndirected;
  }

  void CheckAggregates() {
    std::map<int, int> rules_per_head;
    for (const CompiledRule& rule : rules_) {
      ++rules_per_head[rule.head_pred];
      if (rule.has_aggregate) {
        preds_[static_cast<size_t>(rule.head_pred)].has_aggregate_rule = true;
      }
    }
    std::set<int> reported;
    for (const CompiledRule& rule : rules_) {
      if (preds_[static_cast<size_t>(rule.head_pred)].has_aggregate_rule &&
          rules_per_head[rule.head_pred] > 1 &&
          reported.insert(rule.head_pred).second) {
        Err(StatusCode::kUnsupported, "PQL2018", rule.name_span,
            "aggregate relation " +
                preds_[static_cast<size_t>(rule.head_pred)].name +
                " must be defined by exactly one rule");
      }
    }
    for (const PredicateInfo& info : preds_) {
      if (info.shipped && info.has_aggregate_rule) {
        Err(StatusCode::kUnsupported, "PQL2019", Span{},
            "shipping aggregate relation " + info.name + " is not supported");
      }
    }
  }

  /// Recognizes projection-only capture programs (paper Queries 2 and 11)
  /// and compiles direct recording plans for them.
  void ExtractFastCapture() {
    if (!options_.allow_transient) return;
    FastCapturePlan plan;
    for (size_t r = 0; r < rules_.size(); ++r) {
      const CompiledRule& rule = rules_[r];
      if (rule.has_aggregate) return;
      // The head predicate must not be read by any rule (non-recursive).
      for (const CompiledRule& other : rules_) {
        for (int p : other.body_preds) {
          if (p == rule.head_pred) return;
        }
      }
      const CLiteral* source = nullptr;
      const CLiteral* step_atom = nullptr;
      for (const CLiteral& cl : rule.body) {
        if (cl.kind != CLiteral::Kind::kAtom || cl.negated) return;
        const EdbKind kind = preds_[static_cast<size_t>(cl.pred)].edb;
        if (kind == EdbKind::kSuperstep && step_atom == nullptr) {
          step_atom = &cl;
        } else if (source == nullptr &&
                   (kind == EdbKind::kVertexValueNow ||
                    kind == EdbKind::kValue || kind == EdbKind::kSendNow ||
                    kind == EdbKind::kSendMessage ||
                    kind == EdbKind::kReceiveNow ||
                    kind == EdbKind::kReceiveMessage ||
                    kind == EdbKind::kEdge)) {
          source = &cl;
        } else {
          return;
        }
      }
      if (source == nullptr) return;
      // Source args must be distinct plain variables; the superstep atom
      // may freely repeat them (it only re-asserts the current step).
      std::set<int> seen;
      for (int arg : source->args) {
        int v;
        if (!IsPlainVar(rule, arg, &v)) return;
        if (!seen.insert(v).second) return;
      }
      if (step_atom != nullptr) {
        for (int arg : step_atom->args) {
          if (!IsPlainVar(rule, arg)) return;
        }
      }
      // Map head columns.
      FastCaptureProjection projection;
      projection.source = preds_[static_cast<size_t>(source->pred)].edb;
      projection.head_pred = rule.head_pred;
      for (const CHeadTerm& h : rule.head) {
        if (h.is_aggregate) return;
        int v;
        if (!IsPlainVar(rule, h.term, &v)) return;
        int col = -2;
        for (size_t i = 0; i < source->args.size(); ++i) {
          int sv;
          if (IsPlainVar(rule, source->args[static_cast<size_t>(i)], &sv) &&
              sv == v) {
            col = static_cast<int>(i);
            break;
          }
        }
        if (col == -2 && step_atom != nullptr) {
          int sv;
          if (step_atom->args.size() == 2 &&
              IsPlainVar(rule, step_atom->args[1], &sv) && sv == v) {
            col = -1;  // current superstep
          }
        }
        if (col == -2) return;
        projection.columns.push_back(col);
      }
      plan.projections.push_back(std::move(projection));
    }
    if (!plan.projections.empty() &&
        plan.projections.size() == rules_.size()) {
      fast_capture_ = std::move(plan);
    }
  }

  const Program& program_;
  const Catalog& catalog_;
  const UdfRegistry& udfs_;
  const StoreSchema* store_;
  AnalyzeOptions options_;
  DiagnosticSink own_sink_;
  DiagnosticSink* sink_;
  Status first_error_;

  std::vector<bool> bad_;  ///< program rule index -> dropped by an error
  std::vector<PredicateInfo> preds_;
  std::set<int> head_preds_;
  std::vector<CompiledRule> rules_;
  int num_strata_ = 1;
  Direction direction_ = Direction::kLocal;
  bool vc_compatible_ = true;
  std::optional<FastCapturePlan> fast_capture_;
};

}  // namespace

Result<AnalyzedQuery> Analyze(const Program& program, const Catalog& catalog,
                              const UdfRegistry& udfs,
                              const StoreSchema* store,
                              const AnalyzeOptions& options,
                              DiagnosticSink* sink) {
  return Analyzer(program, catalog, udfs, store, options, sink).Run();
}

}  // namespace ariadne
