#include "pql/lexer.h"

#include <cctype>

namespace ariadne {

Span TokenSpan(const Token& token) {
  Span span;
  span.line = token.line;
  span.column = token.column;
  span.length = token.length > 0 ? token.length : 1;
  span.offset = token.offset;
  return span;
}

Span JoinSpans(const Span& first, const Span& last) {
  Span span = first;
  const size_t end = last.offset + static_cast<size_t>(last.length);
  if (end > span.offset) {
    span.length = static_cast<int>(end - span.offset);
  }
  return span;
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Recovering lexer: every lexical error goes to the sink and lexing
/// continues, so one pass reports all of them. The legacy Result<> entry
/// point wraps this and returns the sink's first error.
class Lexer {
 public:
  Lexer(const std::string& text, DiagnosticSink& sink)
      : text_(text), sink_(sink) {}

  std::vector<Token> Run() {
    std::vector<Token> tokens;
    for (;;) {
      SkipWhitespaceAndComments();
      Token token;
      token.line = line_;
      token.column = column_;
      token.offset = pos_;
      if (AtEnd()) {
        token.kind = TokenKind::kEof;
        tokens.push_back(token);
        return tokens;
      }
      if (Next(token)) {
        token.length = static_cast<int>(pos_ - token.offset);
        tokens.push_back(std::move(token));
      }
      // On a lexical error Next() already consumed the offending
      // character(s) and reported; just continue with the next token.
    }
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }
  char Advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void SkipWhitespaceAndComments() {
    for (;;) {
      while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
      if (Peek() == '%' || (Peek() == '/' && Peek(1) == '/')) {
        while (!AtEnd() && Peek() != '\n') Advance();
        continue;
      }
      return;
    }
  }

  Span Here(size_t start_offset, int start_line, int start_column) const {
    Span span;
    span.line = start_line;
    span.column = start_column;
    span.offset = start_offset;
    span.length = static_cast<int>(
        pos_ > start_offset ? pos_ - start_offset : 1);
    return span;
  }

  void Report(const char* code, size_t start_offset, int start_line,
              int start_column, std::string message) {
    sink_.Error(code, Here(start_offset, start_line, start_column),
                std::move(message));
  }

  /// Lexes one token into `token`. Returns false when the input at this
  /// position was invalid (already reported and consumed).
  bool Next(Token& token) {
    const size_t start = pos_;
    const int sline = line_, scol = column_;
    const char c = Peek();
    if (IsIdentStart(c)) {
      LexIdent(token);
      return true;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      return LexNumber(token);
    }
    switch (c) {
      case '$':
        Advance();
        if (!IsIdentStart(Peek())) {
          Report("PQL1006", start, sline, scol, "expected name after '$'");
          return false;
        }
        LexIdentInto(token);
        token.kind = TokenKind::kParam;
        return true;
      case '"':
        return LexString(token);
      case '(':
        Advance();
        token.kind = TokenKind::kLParen;
        return true;
      case ')':
        Advance();
        token.kind = TokenKind::kRParen;
        return true;
      case ',':
        Advance();
        token.kind = TokenKind::kComma;
        return true;
      case '.':
        Advance();
        token.kind = TokenKind::kDot;
        return true;
      case '!':
        Advance();
        if (Peek() == '=') {
          Advance();
          token.kind = TokenKind::kNe;
        } else {
          token.kind = TokenKind::kBang;
        }
        return true;
      case '=':
        Advance();
        if (Peek() == '=') Advance();
        token.kind = TokenKind::kEq;
        return true;
      case '<':
        Advance();
        if (Peek() == '-') {
          Advance();
          token.kind = TokenKind::kArrow;
        } else if (Peek() == '=') {
          Advance();
          token.kind = TokenKind::kLe;
        } else if (Peek() == '>') {
          Advance();
          token.kind = TokenKind::kNe;
        } else {
          token.kind = TokenKind::kLt;
        }
        return true;
      case '>':
        Advance();
        if (Peek() == '=') {
          Advance();
          token.kind = TokenKind::kGe;
        } else {
          token.kind = TokenKind::kGt;
        }
        return true;
      case ':':
        Advance();
        if (Peek() == '-') {
          Advance();
          token.kind = TokenKind::kArrow;
          return true;
        }
        Report("PQL1007", start, sline, scol, "expected '-' after ':'");
        return false;
      case '+':
        Advance();
        token.kind = TokenKind::kPlus;
        return true;
      case '-':
        Advance();
        token.kind = TokenKind::kMinus;
        return true;
      case '*':
        Advance();
        token.kind = TokenKind::kStar;
        return true;
      case '/':
        Advance();
        token.kind = TokenKind::kSlash;
        return true;
      default:
        Advance();
        Report("PQL1001", start, sline, scol,
               std::string("unexpected character '") + c + "'");
        return false;
    }
  }

  void LexIdentInto(Token& token) {
    std::string name;
    name.push_back(Advance());
    for (;;) {
      if (IsIdentChar(Peek())) {
        name.push_back(Advance());
      } else if (Peek() == '-' && IsIdentStart(Peek(1))) {
        // Hyphenated identifier continuation (receive-message).
        name.push_back(Advance());
        name.push_back(Advance());
      } else {
        break;
      }
    }
    token.text = std::move(name);
  }

  void LexIdent(Token& token) {
    LexIdentInto(token);
    if (token.text == "not") {
      token.kind = TokenKind::kBang;
    } else {
      token.kind = TokenKind::kIdent;
    }
  }

  bool LexNumber(Token& token) {
    const size_t start = pos_;
    const int sline = line_, scol = column_;
    std::string digits;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) {
      digits.push_back(Advance());
    }
    bool is_double = false;
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_double = true;
      digits.push_back(Advance());
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        digits.push_back(Advance());
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      is_double = true;
      digits.push_back(Advance());
      if (Peek() == '+' || Peek() == '-') digits.push_back(Advance());
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        Report("PQL1002", start, sline, scol, "malformed exponent");
        return false;
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        digits.push_back(Advance());
      }
    }
    if (is_double) {
      token.kind = TokenKind::kDouble;
      token.literal = Value(std::stod(digits));
    } else {
      token.kind = TokenKind::kInt;
      token.literal = Value(static_cast<int64_t>(std::stoll(digits)));
    }
    return true;
  }

  bool LexString(Token& token) {
    const size_t start = pos_;
    const int sline = line_, scol = column_;
    Advance();  // opening quote
    std::string out;
    while (!AtEnd() && Peek() != '"') {
      char c = Advance();
      if (c == '\\' && !AtEnd()) {
        const char esc = Advance();
        switch (esc) {
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          default:
            c = esc;
        }
      }
      out.push_back(c);
    }
    if (AtEnd()) {
      Report("PQL1003", start, sline, scol, "unterminated string literal");
      return false;
    }
    Advance();  // closing quote
    token.kind = TokenKind::kString;
    token.literal = Value(std::move(out));
    return true;
  }

  const std::string& text_;
  DiagnosticSink& sink_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

std::vector<Token> Tokenize(const std::string& text, DiagnosticSink& sink) {
  return Lexer(text, sink).Run();
}

Result<std::vector<Token>> Tokenize(const std::string& text) {
  DiagnosticSink sink;
  std::vector<Token> tokens = Lexer(text, sink).Run();
  if (sink.has_errors()) return sink.FirstErrorStatus();
  return tokens;
}

}  // namespace ariadne
