#include "pql/lexer.h"

#include <cctype>

namespace ariadne {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    for (;;) {
      SkipWhitespaceAndComments();
      Token token;
      token.line = line_;
      token.column = column_;
      if (AtEnd()) {
        token.kind = TokenKind::kEof;
        tokens.push_back(token);
        return tokens;
      }
      ARIADNE_RETURN_NOT_OK(Next(token));
      tokens.push_back(std::move(token));
    }
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }
  char Advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void SkipWhitespaceAndComments() {
    for (;;) {
      while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
      if (Peek() == '%' || (Peek() == '/' && Peek(1) == '/')) {
        while (!AtEnd() && Peek() != '\n') Advance();
        continue;
      }
      return;
    }
  }

  Status Error(const std::string& message) const {
    return Status::ParseError("line " + std::to_string(line_) + ":" +
                              std::to_string(column_) + ": " + message);
  }

  Status Next(Token& token) {
    const char c = Peek();
    if (IsIdentStart(c)) return LexIdent(token);
    if (std::isdigit(static_cast<unsigned char>(c))) return LexNumber(token);
    switch (c) {
      case '$':
        Advance();
        if (!IsIdentStart(Peek())) return Error("expected name after '$'");
        LexIdentInto(token);
        token.kind = TokenKind::kParam;
        return Status::OK();
      case '"':
        return LexString(token);
      case '(':
        Advance();
        token.kind = TokenKind::kLParen;
        return Status::OK();
      case ')':
        Advance();
        token.kind = TokenKind::kRParen;
        return Status::OK();
      case ',':
        Advance();
        token.kind = TokenKind::kComma;
        return Status::OK();
      case '.':
        Advance();
        token.kind = TokenKind::kDot;
        return Status::OK();
      case '!':
        Advance();
        if (Peek() == '=') {
          Advance();
          token.kind = TokenKind::kNe;
        } else {
          token.kind = TokenKind::kBang;
        }
        return Status::OK();
      case '=':
        Advance();
        if (Peek() == '=') Advance();
        token.kind = TokenKind::kEq;
        return Status::OK();
      case '<':
        Advance();
        if (Peek() == '-') {
          Advance();
          token.kind = TokenKind::kArrow;
        } else if (Peek() == '=') {
          Advance();
          token.kind = TokenKind::kLe;
        } else if (Peek() == '>') {
          Advance();
          token.kind = TokenKind::kNe;
        } else {
          token.kind = TokenKind::kLt;
        }
        return Status::OK();
      case '>':
        Advance();
        if (Peek() == '=') {
          Advance();
          token.kind = TokenKind::kGe;
        } else {
          token.kind = TokenKind::kGt;
        }
        return Status::OK();
      case ':':
        Advance();
        if (Peek() == '-') {
          Advance();
          token.kind = TokenKind::kArrow;
          return Status::OK();
        }
        return Error("expected '-' after ':'");
      case '+':
        Advance();
        token.kind = TokenKind::kPlus;
        return Status::OK();
      case '-':
        Advance();
        token.kind = TokenKind::kMinus;
        return Status::OK();
      case '*':
        Advance();
        token.kind = TokenKind::kStar;
        return Status::OK();
      case '/':
        Advance();
        token.kind = TokenKind::kSlash;
        return Status::OK();
      default:
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  void LexIdentInto(Token& token) {
    std::string name;
    name.push_back(Advance());
    for (;;) {
      if (IsIdentChar(Peek())) {
        name.push_back(Advance());
      } else if (Peek() == '-' && IsIdentStart(Peek(1))) {
        // Hyphenated identifier continuation (receive-message).
        name.push_back(Advance());
        name.push_back(Advance());
      } else {
        break;
      }
    }
    token.text = std::move(name);
  }

  Status LexIdent(Token& token) {
    LexIdentInto(token);
    if (token.text == "not") {
      token.kind = TokenKind::kBang;
    } else {
      token.kind = TokenKind::kIdent;
    }
    return Status::OK();
  }

  Status LexNumber(Token& token) {
    std::string digits;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) {
      digits.push_back(Advance());
    }
    bool is_double = false;
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_double = true;
      digits.push_back(Advance());
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        digits.push_back(Advance());
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      is_double = true;
      digits.push_back(Advance());
      if (Peek() == '+' || Peek() == '-') digits.push_back(Advance());
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("malformed exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        digits.push_back(Advance());
      }
    }
    if (is_double) {
      token.kind = TokenKind::kDouble;
      token.literal = Value(std::stod(digits));
    } else {
      token.kind = TokenKind::kInt;
      token.literal = Value(static_cast<int64_t>(std::stoll(digits)));
    }
    return Status::OK();
  }

  Status LexString(Token& token) {
    Advance();  // opening quote
    std::string out;
    while (!AtEnd() && Peek() != '"') {
      char c = Advance();
      if (c == '\\' && !AtEnd()) {
        const char esc = Advance();
        switch (esc) {
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          default:
            c = esc;
        }
      }
      out.push_back(c);
    }
    if (AtEnd()) return Error("unterminated string literal");
    Advance();  // closing quote
    token.kind = TokenKind::kString;
    token.literal = Value(std::move(out));
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& text) {
  return Lexer(text).Run();
}

}  // namespace ariadne
