#include "pql/queries.h"

namespace ariadne::queries {

std::string Apt() {
  return R"pql(
    change(x, i) <- value(x, d1, i), value(x, d2, j), evolution(x, j, i),
                    udf-diff(d1, d2, $eps).
    neighbor-change(x, i) <- receive-msg(x, y, m, i), !change(y, j), j = i - 1.
    no-execute(x, i) <- !neighbor-change(x, i), superstep(x, i).
    safe(x, i) <- no-execute(x, i), change(x, i).
    unsafe(x, i) <- no-execute(x, i), !change(x, i).
  )pql";
}

std::string CaptureFull() {
  return R"pql(
    value(x, v, i) <- vertex-value(x, v), superstep(x, i).
    send-message(x, y, m, i) <- send(x, y, m), superstep(x, i).
    receive-message(x, y, m, i) <- receive(x, y, m), superstep(x, i).
  )pql";
}

std::string CaptureForwardLineage() {
  return R"pql(
    fwd-lineage(x, v, i) <- value(x, v, i), superstep(x, i), x = $alpha, i = 0.
    fwd-lineage(x, v, i) <- receive-message(x, y, m, i), fwd-lineage(y, w, j),
                            value(x, v, i).
  )pql";
}

std::string PageRankInDegreeCheck() {
  return R"pql(
    in-degree(x, COUNT(y)) <- edge(y, x).
    check-failed(x, y, i) <- in-degree(x, d), receive-message(x, y, m, i),
                             d = 0.
  )pql";
}

std::string MonotoneUpdateCheck() {
  return R"pql(
    check-failed(x, i) <- value(x, d1, i), value(x, d2, j), evolution(x, j, i),
                          receive-message(x, y, m, i), d1 > d2.
  )pql";
}

std::string NoMessageNoChangeCheck() {
  return R"pql(
    neighbor-change(x, i) <- receive-message(x, y, m, i).
    problem(x, i) <- value(x, d1, i), value(x, d2, j), evolution(x, j, i),
                     !neighbor-change(x, i), d1 != d2.
  )pql";
}

std::string AlsRangeAudit() {
  return R"pql(
    prov-prediction(x, y, p, i) <- value(x, d, i), receive-message(x, y, m, i),
                                   als-predict(d, m, p).
    prov-error(x, y, e, i) <- prov-prediction(x, y, p, i),
                              receive-message(x, y, m, i), als-rating(m, r),
                              e = r - p.
    input-failed(x, y, i) <- prov-error(x, y, e, i), edge-value(x, y, w, i),
                             outside(w, 0, 5).
    algo-failed(x, y, i) <- prov-prediction(x, y, p, i), outside(p, 0, 5).
  )pql";
}

std::string AlsErrorIncrease() {
  return R"pql(
    prov-prediction(x, y, p, i) <- value(x, d, i), receive-message(x, y, m, i),
                                   als-predict(d, m, p).
    prov-error(x, y, e, i) <- prov-prediction(x, y, p, i),
                              receive-message(x, y, m, i), als-rating(m, r),
                              e = r - p.
    degree(x, COUNT(y)) <- receive-message(x, y, m, i).
    sum-error(x, i, SUM(e)) <- prov-error(x, y, e, i).
    avg-error(x, i, s / d) <- sum-error(x, i, s), degree(x, d).
    problem(x, e1, e2, i) <- avg-error(x, i, e1), avg-error(x, j, e2),
                             evolution(x, j, i), e1 > e2 + $eps.
  )pql";
}

std::string BackwardLineageFull() {
  return R"pql(
    back-trace(x, i) <- superstep(x, i), i = $sigma, x = $alpha.
    back-trace(x, i) <- send-message(x, y, m, i), back-trace(y, j), j = i + 1.
    back-lineage(x, d) <- back-trace(x, i), value(x, d, i), i = 0.
  )pql";
}

std::string CaptureCustomBackward() {
  return R"pql(
    prov-value(x, i, d) <- value(x, d, i), superstep(x, i).
    prov-send(x, i) <- send-message(x, y, m, i).
    prov-edges(x, y) <- edges(x, y).
  )pql";
}

std::string BackwardLineageCustom() {
  return R"pql(
    back-trace(x, i) <- prov-value(x, i, d), i = $sigma, x = $alpha.
    back-trace(x, i) <- prov-edges(x, y), prov-send(x, i), back-trace(y, j),
                        j = i + 1.
    back-lineage(x, d) <- back-trace(x, i), prov-value(x, i, d), i = 0.
  )pql";
}

}  // namespace ariadne::queries
