#ifndef ARIADNE_PQL_QUERIES_H_
#define ARIADNE_PQL_QUERIES_H_

#include <string>

namespace ariadne::queries {

/// The paper's numbered queries as PQL texts. Parameters ($eps, $alpha,
/// $sigma) are bound via Program::BindParameters. Two texts deviate from
/// the printed versions where those are ill-formed under set semantics;
/// the deviations are documented inline and in DESIGN.md.

/// Query 1 / §6.2.2 — the apt (approximate-optimization tuning) query.
/// Parameter: $eps. udf-diff compares scalars by |Δ| and ALS feature
/// vectors by euclidean distance, matching the paper's parameterization.
std::string Apt();

/// Query 2 — capture the full provenance graph.
std::string CaptureFull();

/// Query 3 — capture a custom provenance graph: the forward lineage of
/// vertex $alpha starting at superstep 0.
std::string CaptureForwardLineage();

/// Query 4 — PageRank monitoring: vertices with zero in-degree must not
/// receive messages.
std::string PageRankInDegreeCheck();

/// Query 5 — SSSP/WCC monitoring: a value revision upon receiving
/// messages must never *increase* the value. (The printed rule ties the
/// receive to the earlier superstep of the evolution edge and flags
/// non-decreases; we use the update superstep and flag strict increases,
/// which is what the prose describes.)
std::string MonotoneUpdateCheck();

/// Query 6 — SSSP/WCC monitoring: no messages => no value change.
std::string NoMessageNoChangeCheck();

/// Query 7 — ALS input/algorithm audit: ratings and predictions must stay
/// in the rating range; failures are attributed to the input (corrupt
/// rating) or the algorithm (prediction out of range). (The printed
/// conjunction `e < 0, e > 5` is unsatisfiable; we use the
/// `outside(v, lo, hi)` UDF.) Builds on prov-prediction / prov-error
/// rules derived via the als-predict / als-rating function UDFs.
std::string AlsRangeAudit();

/// Query 8 — ALS monitoring: users/items whose average prediction error
/// increases across consecutive solve supersteps by more than $eps.
std::string AlsErrorIncrease();

/// Query 10 — backward lineage over the full provenance graph.
/// Parameters: $alpha (output vertex), $sigma (its superstep).
std::string BackwardLineageFull();

/// Query 11 — custom capture for backward tracing: values, send
/// supersteps (no payloads, no destinations) and static edges.
std::string CaptureCustomBackward();

/// Query 12 — backward lineage over the Query-11 custom provenance.
/// Parameters: $alpha, $sigma.
std::string BackwardLineageCustom();

}  // namespace ariadne::queries

#endif  // ARIADNE_PQL_QUERIES_H_
