#ifndef ARIADNE_PQL_RELATION_H_
#define ARIADNE_PQL_RELATION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/value.h"

namespace ariadne {

/// One row of a PQL relation as an exchange value. Column 0 is always the
/// location specifier (a vertex id as Value::kInt) — see DESIGN.md:
/// keeping the location explicit lets the same evaluation code run
/// per-vertex (online/layered) and globally (naive).
///
/// Relations no longer *store* rows in this form (see Relation::Cell);
/// Tuple remains the format tuples enter and leave a Relation in.
using Tuple = std::vector<Value>;

struct TupleHash {
  size_t operator()(const Tuple& t) const;
};

std::string TupleToString(const Tuple& t);

/// Set-semantics relation with insertion-order row access (for delta
/// scans via external watermarks), duplicate elimination, and lazily
/// built, incrementally maintained single-column hash indexes for joins.
///
/// Storage is flat: rows live as fixed-size cells in one contiguous
/// arena (ints and doubles inline; strings and double vectors interned
/// into per-relation pools and referenced by id), so inserts, probes and
/// dedup do no per-row heap allocation. `byte_size()` still accounts the
/// logical Tuple footprint, keeping the paper's provenance-size numbers
/// unchanged.
class Relation {
 public:
  /// One flat column cell. 16 bytes; the payload interpretation follows
  /// the tag (inline int/double, or an id into the owning relation's
  /// string / double-vector pool).
  struct Cell {
    Value::Kind tag = Value::Kind::kNull;
    union {
      int64_t i;
      double d;
      uint32_t ref;
    };
  };

  /// Borrowed view of one stored row. Valid until the next mutating call
  /// on the owning relation (same lifetime rule as Probe results).
  class RowView {
   public:
    RowView() = default;

    size_t size() const { return n_; }
    Value::Kind kind(size_t col) const { return cells_[col].tag; }
    bool is_int(size_t col) const {
      return cells_[col].tag == Value::Kind::kInt;
    }
    int64_t AsInt(size_t col) const { return cells_[col].i; }
    double AsDouble(size_t col) const { return cells_[col].d; }
    const std::string& AsString(size_t col) const;
    const std::vector<double>& AsDoubleVector(size_t col) const;

    /// Materializes column `col` as a Value (copies interned payloads).
    Value value(size_t col) const;

    /// Column-against-Value comparison without materializing the cell.
    bool Equals(size_t col, const Value& v) const;

    Tuple ToTuple() const;

   private:
    friend class Relation;
    RowView(const Relation* rel, const Cell* cells, uint32_t n)
        : rel_(rel), cells_(cells), n_(n) {}

    const Relation* rel_ = nullptr;
    const Cell* cells_ = nullptr;
    uint32_t n_ = 0;
  };

  explicit Relation(int arity = 0) : arity_(arity) {}

  // Non-copyable/non-movable: the dedup set's hasher captures a pointer
  // to this object's row storage.
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  int arity() const { return arity_; }
  size_t size() const { return row_begin_.size() - 1; }
  bool empty() const { return size() == 0; }

  /// Borrowed view of row `i` (invalidated by the next mutating call).
  RowView row_view(size_t i) const {
    return RowView(this, cells_.data() + row_begin_[i],
                   row_begin_[i + 1] - row_begin_[i]);
  }

  /// Materializes row `i` as a Tuple (copies interned payloads).
  Tuple TupleAt(size_t i) const { return row_view(i).ToTuple(); }

  /// Inserts a tuple; returns false (and drops it) when already present.
  bool Insert(const Tuple& t);

  bool Contains(const Tuple& t) const;

  /// Row indices whose column `col` equals `v`. Builds an index on `col`
  /// on first use and extends it incrementally afterwards. The returned
  /// reference is invalidated by the next mutating call.
  const std::vector<uint32_t>& Probe(int col, const Value& v);

  /// Whether Probe already built an index on `col` (profiling: lets the
  /// evaluator count index builds before triggering one).
  bool HasIndex(int col) const { return indexes_.count(col) != 0; }

  /// Approximate memory footprint of the stored tuples (indexes excluded)
  /// — the unit of the provenance-size accounting (Tables 3-4).
  size_t byte_size() const { return byte_size_; }

  /// Monotone mutation counter; evaluation watermarks compare sums of
  /// versions to skip rules whose inputs did not change.
  uint64_t version() const { return version_; }

  /// Bumped whenever existing rows are rearranged or removed (Clear,
  /// RemoveIf, ReplaceAll). Row-index-based delta watermarks are only
  /// valid within one epoch; on a mismatch the consumer rescans.
  uint64_t epoch() const { return epoch_; }

  /// Replaces the full contents (aggregate re-evaluation). Returns true
  /// if the contents changed.
  bool ReplaceAll(std::vector<Tuple> tuples);

  /// Removes rows matching `pred` (online history retention); rebuilds
  /// dedup and index state.
  void RemoveIf(const std::function<bool(const Tuple&)>& pred);

  void Clear();

  /// Deterministic dump for tests/goldens.
  std::vector<std::string> ToSortedStrings() const;

 private:
  /// Sentinel index addressing `probe_` instead of a stored row, so
  /// membership tests hash a candidate tuple without copying it in.
  static constexpr uint32_t kProbeIdx = 0xffffffffu;

  struct IdxHash {
    const Relation* rel;
    size_t operator()(uint32_t i) const {
      return i == kProbeIdx ? TupleHash()(*rel->probe_) : rel->RowHash(i);
    }
  };
  struct IdxEq {
    const Relation* rel;
    bool operator()(uint32_t a, uint32_t b) const {
      if (a == b) return true;
      if (a == kProbeIdx) std::swap(a, b);
      if (b == kProbeIdx) return rel->RowEqualsTuple(a, *rel->probe_);
      return rel->RowEqualsRow(a, b);
    }
  };
  struct ColumnIndex {
    std::unordered_map<Value, std::vector<uint32_t>, ValueHash> buckets;
    size_t indexed_up_to = 0;
  };

  /// Appends `t` to the arena (interning strings/vectors); returns the
  /// new row index. Does not touch dedup/indexes/version.
  uint32_t EncodeRow(const Tuple& t);

  uint32_t InternString(const std::string& s);
  uint32_t InternDoubleVector(const std::vector<double>& v);

  Value CellToValue(const Cell& c) const;
  bool CellEqualsValue(const Cell& c, const Value& v) const;
  /// Matches Value::Hash of the materialized cell exactly (the dedup set
  /// mixes row hashes with hashes of probe Tuples).
  size_t CellHash(const Cell& c) const;
  size_t RowHash(uint32_t i) const;
  bool RowEqualsTuple(uint32_t i, const Tuple& t) const;
  bool RowEqualsRow(uint32_t a, uint32_t b) const;

  int arity_;
  /// Cell arena + row offsets: row i is cells_[row_begin_[i],
  /// row_begin_[i+1]). One extra trailing offset, so size() is cheap.
  std::vector<Cell> cells_;
  std::vector<uint32_t> row_begin_{0};

  /// Interning pools. Deques keep element addresses stable so views and
  /// the intern maps can reference them. Pools survive Clear(): retention
  /// churn re-inserts mostly the same payloads, and stale entries are
  /// unreachable once no row references them.
  std::deque<std::string> string_pool_;
  std::vector<size_t> string_hashes_;  ///< std::hash of each pooled string
  std::unordered_map<std::string_view, uint32_t> string_ids_;
  std::deque<std::vector<double>> vec_pool_;
  std::vector<size_t> vec_hashes_;  ///< Value-compatible payload hashes
  std::unordered_map<size_t, std::vector<uint32_t>> vec_ids_;

  const Tuple* probe_ = nullptr;
  std::unordered_set<uint32_t, IdxHash, IdxEq> dedup_{0, IdxHash{this},
                                                      IdxEq{this}};
  std::unordered_map<int, ColumnIndex> indexes_;
  size_t byte_size_ = 0;
  uint64_t version_ = 0;
  uint64_t epoch_ = 0;
};

/// Memory size of one tuple (sum of value footprints + row overhead).
size_t TupleByteSize(const Tuple& t);

}  // namespace ariadne

#endif  // ARIADNE_PQL_RELATION_H_
