#ifndef ARIADNE_PQL_RELATION_H_
#define ARIADNE_PQL_RELATION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/value.h"

namespace ariadne {

/// One row of a PQL relation. Column 0 is always the location specifier
/// (a vertex id as Value::kInt) — see DESIGN.md: keeping the location
/// explicit lets the same evaluation code run per-vertex (online/layered)
/// and globally (naive).
using Tuple = std::vector<Value>;

struct TupleHash {
  size_t operator()(const Tuple& t) const;
};

std::string TupleToString(const Tuple& t);

/// Set-semantics relation with insertion-order row access (for delta
/// scans via external watermarks), duplicate elimination, and lazily
/// built, incrementally maintained single-column hash indexes for joins.
class Relation {
 public:
  explicit Relation(int arity = 0) : arity_(arity) {}

  // Non-copyable/non-movable: the dedup set's hasher captures a pointer
  // to this object's tuple storage.
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  int arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const Tuple& row(size_t i) const { return tuples_[i]; }
  const std::vector<Tuple>& rows() const { return tuples_; }

  /// Inserts a tuple; returns false (and drops it) when already present.
  bool Insert(Tuple t);

  bool Contains(const Tuple& t) const;

  /// Row indices whose column `col` equals `v`. Builds an index on `col`
  /// on first use and extends it incrementally afterwards. The returned
  /// reference is invalidated by the next mutating call.
  const std::vector<uint32_t>& Probe(int col, const Value& v);

  /// Approximate memory footprint of the stored tuples (indexes excluded)
  /// — the unit of the provenance-size accounting (Tables 3-4).
  size_t byte_size() const { return byte_size_; }

  /// Monotone mutation counter; evaluation watermarks compare sums of
  /// versions to skip rules whose inputs did not change.
  uint64_t version() const { return version_; }

  /// Bumped whenever existing rows are rearranged or removed (Clear,
  /// RemoveIf, ReplaceAll). Row-index-based delta watermarks are only
  /// valid within one epoch; on a mismatch the consumer rescans.
  uint64_t epoch() const { return epoch_; }

  /// Replaces the full contents (aggregate re-evaluation). Returns true
  /// if the contents changed.
  bool ReplaceAll(std::vector<Tuple> tuples);

  /// Removes rows matching `pred` (online history retention); rebuilds
  /// dedup and index state.
  void RemoveIf(const std::function<bool(const Tuple&)>& pred);

  void Clear();

  /// Deterministic dump for tests/goldens.
  std::vector<std::string> ToSortedStrings() const;

 private:
  /// Sentinel index addressing `probe_` instead of a stored row, so
  /// membership tests hash a candidate tuple without copying it in.
  static constexpr uint32_t kProbeIdx = 0xffffffffu;

  const Tuple& RowOrProbe(uint32_t i) const {
    return i == kProbeIdx ? *probe_ : tuples_[i];
  }

  struct IdxHash {
    const Relation* rel;
    size_t operator()(uint32_t i) const {
      return TupleHash()(rel->RowOrProbe(i));
    }
  };
  struct IdxEq {
    const Relation* rel;
    bool operator()(uint32_t a, uint32_t b) const {
      return rel->RowOrProbe(a) == rel->RowOrProbe(b);
    }
  };
  struct ColumnIndex {
    std::unordered_map<Value, std::vector<uint32_t>, ValueHash> buckets;
    size_t indexed_up_to = 0;
  };

  void RebuildDedup();

  int arity_;
  std::vector<Tuple> tuples_;
  const Tuple* probe_ = nullptr;
  std::unordered_set<uint32_t, IdxHash, IdxEq> dedup_{0, IdxHash{this},
                                                      IdxEq{this}};
  std::unordered_map<int, ColumnIndex> indexes_;
  size_t byte_size_ = 0;
  uint64_t version_ = 0;
  uint64_t epoch_ = 0;
};

/// Memory size of one tuple (sum of value footprints + row overhead).
size_t TupleByteSize(const Tuple& t);

}  // namespace ariadne

#endif  // ARIADNE_PQL_RELATION_H_
