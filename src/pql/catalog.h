#ifndef ARIADNE_PQL_CATALOG_H_
#define ARIADNE_PQL_CATALOG_H_

#include <optional>
#include <string>
#include <vector>

namespace ariadne {

/// Built-in provenance EDB predicates (paper Table 1 plus the transient,
/// capture-time views of paper Query 2 and the static graph relations).
enum class EdbKind {
  kNone = 0,  ///< not an EDB (user IDB)

  // --- Stored provenance-graph relations (Table 1) ---
  // Note: during ONLINE evaluation, superstep(x, i) holds only the
  // current activation (past activations are reachable via evolution and
  // the step columns of value/send/receive-message); offline evaluation
  // sees the full stored history. See DESIGN.md §6.
  kSuperstep,       ///< superstep(x, i): x was active at superstep i
  kValue,           ///< value(x, d, i): x had value d at superstep i
  kEvolution,       ///< evolution(x, i, j): consecutive activations i -> j
  kSendMessage,     ///< send-message(x, y, m, i)
  kReceiveMessage,  ///< receive-message(x, y, m, i)

  // --- Static input-graph relations (available everywhere) ---
  kEdge,       ///< edge(x, y): directed input edge
  kEdgeValue,  ///< edge-value(x, y, w, i): edge weight (constant over i)

  // --- Transient capture-time views (online/capture evaluation only) ---
  kVertexValueNow,  ///< vertex-value(x, d): value at the current superstep
  kSendNow,         ///< send(x, y, m): message sent this superstep
  kReceiveNow,      ///< receive(x, y, m): message received this superstep

  // --- Stored relations from a custom capture query (schema-resolved) ---
  kStored,  ///< EDB backed by a ProvenanceStore relation by name
};

/// True for the static graph relations a vertex can always enumerate
/// locally (both adjacency directions are co-partitioned with the vertex),
/// which the VC-compatibility analysis therefore treats as local.
bool IsStaticEdb(EdbKind kind);

/// True for the transient capture-time views (only valid online).
bool IsTransientEdb(EdbKind kind);

/// Column index (0-based) of the superstep attribute of an EDB, if any.
/// Drives layered materialization and online history retention.
std::optional<int> EdbStepColumn(EdbKind kind);

/// Schema entry for a built-in predicate.
struct EdbSchema {
  std::string name;
  int arity = 0;
  EdbKind kind = EdbKind::kNone;
};

/// Name -> schema resolution for built-in EDB predicates, including
/// aliases used in the paper's query texts (receive-msg, edges).
class Catalog {
 public:
  Catalog();

  /// Returns the schema for `name`, or nullptr for unknown predicates
  /// (which analysis then treats as IDBs or store-backed relations).
  const EdbSchema* Find(const std::string& name) const;

  const std::vector<EdbSchema>& entries() const { return entries_; }

  /// The process-wide default catalog.
  static const Catalog& Default();

 private:
  std::vector<EdbSchema> entries_;
};

}  // namespace ariadne

#endif  // ARIADNE_PQL_CATALOG_H_
