#include "pql/diagnostics.h"

#include <algorithm>
#include <map>

namespace ariadne {

const char* SeverityToString(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

namespace {

/// code -> short description, in registration (band) order.
const std::vector<std::pair<std::string, std::string>>& CodeTable() {
  static const std::vector<std::pair<std::string, std::string>> kTable = {
      // --- PQL1xxx: lexical / syntax ---
      {"PQL1001", "unexpected character"},
      {"PQL1002", "malformed numeric literal"},
      {"PQL1003", "unterminated string literal"},
      {"PQL1004", "unexpected token (expected something else)"},
      {"PQL1005", "empty PQL program"},
      {"PQL1006", "'$' must be followed by a parameter name"},
      {"PQL1007", "':' must be followed by '-' (rule arrow)"},
      // --- PQL2xxx: semantic analysis ---
      {"PQL2001", "unbound query parameter"},
      {"PQL2002", "rule head redefines a built-in EDB relation"},
      {"PQL2003", "rule head collides with a registered UDF"},
      {"PQL2004", "rule head redefines a transient capture-time EDB"},
      {"PQL2005", "capture rule redefines a relation with the wrong arity"},
      {"PQL2006", "predicate used with inconsistent arities"},
      {"PQL2007", "transient predicate is not available offline"},
      {"PQL2008", "unknown predicate"},
      {"PQL2009", "wrong number of arguments to UDF"},
      {"PQL2010", "function UDFs cannot be negated"},
      {"PQL2011", "program is not stratifiable"},
      {"PQL2012", "rule is not range-restricted"},
      {"PQL2013", "unsafe rule: head variable not bound by the body"},
      {"PQL2014", "head location specifier must be a variable"},
      {"PQL2015", "located atom needs a location argument"},
      {"PQL2016", "atom location specifier must be a variable"},
      {"PQL2017", "relation shipped along conflicting routes"},
      {"PQL2018", "aggregate relation must be defined by exactly one rule"},
      {"PQL2019", "shipping an aggregate relation is not supported"},
      {"PQL2020", "rule with empty head"},
      // --- PQL3xxx: lint warnings ---
      {"PQL3001", "rule is unreachable from every output relation"},
      {"PQL3002", "variable occurs only once (singleton)"},
      {"PQL3003", "rule head shadows a captured (stored) relation"},
      {"PQL3004", "predicate name is confusable with a built-in EDB"},
      {"PQL3005", "join forms a cartesian product"},
      {"PQL3006", "negation over a recursive predicate"},
      {"PQL3007", "comparison is always true (redundant)"},
      {"PQL3008", "comparison is always false (rule can never fire)"},
      {"PQL3009", "parameter bound but never used by the program"},
      {"PQL3010", "join plan degenerates to nested full scans"},
  };
  return kTable;
}

}  // namespace

const char* DiagCodeDescription(const std::string& code) {
  for (const auto& [c, desc] : CodeTable()) {
    if (c == code) return desc.c_str();
  }
  return nullptr;
}

const std::vector<std::string>& AllDiagCodes() {
  static const std::vector<std::string> kCodes = [] {
    std::vector<std::string> out;
    out.reserve(CodeTable().size());
    for (const auto& [c, desc] : CodeTable()) out.push_back(c);
    return out;
  }();
  return kCodes;
}

Diagnostic& DiagnosticSink::Add(Severity severity, std::string code, Span span,
                                std::string message) {
  if (span.file.empty()) span.file = file_;
  Diagnostic d;
  d.severity = severity;
  d.code = std::move(code);
  d.message = std::move(message);
  d.span = std::move(span);
  if (severity == Severity::kError) ++error_count_;
  if (severity == Severity::kWarning) ++warning_count_;
  diagnostics_.push_back(std::move(d));
  return diagnostics_.back();
}

void DiagnosticSink::SortBySpan() {
  std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.span.valid() != b.span.valid()) {
                       return a.span.valid();  // unknown spans last
                     }
                     if (a.span.offset != b.span.offset) {
                       return a.span.offset < b.span.offset;
                     }
                     return a.severity > b.severity;  // errors first
                   });
}

namespace {

/// The content of 1-based `line` in `source` (no trailing newline).
std::string SourceLine(const std::string& source, int line) {
  size_t start = 0;
  for (int i = 1; i < line; ++i) {
    const size_t nl = source.find('\n', start);
    if (nl == std::string::npos) return "";
    start = nl + 1;
  }
  size_t end = source.find('\n', start);
  if (end == std::string::npos) end = source.size();
  return source.substr(start, end - start);
}

}  // namespace

std::string DiagnosticSink::RenderOne(const Diagnostic& d) const {
  std::string out;
  const std::string& file = d.span.file.empty() ? file_ : d.span.file;
  if (d.span.valid()) {
    out += file.empty() ? "<input>" : file;
    out += ":" + std::to_string(d.span.line) + ":" +
           std::to_string(d.span.column) + ": ";
  } else if (!file.empty()) {
    out += file + ": ";
  }
  out += SeverityToString(d.severity);
  out += ": " + d.message + " [" + d.code + "]\n";
  if (d.span.valid() && !source_.empty()) {
    const std::string line = SourceLine(source_, d.span.line);
    if (!line.empty()) {
      out += "    " + line + "\n";
      std::string caret(4, ' ');
      for (int i = 1; i < d.span.column; ++i) {
        // Preserve tabs so the caret lines up under tab-indented source.
        caret.push_back(line[static_cast<size_t>(i - 1)] == '\t' ? '\t' : ' ');
      }
      caret.push_back('^');
      const int max_len =
          static_cast<int>(line.size()) - d.span.column + 1;
      const int len = std::min(std::max(d.span.length, 1), std::max(max_len, 1));
      caret.append(static_cast<size_t>(std::max(len - 1, 0)), '~');
      out += caret + "\n";
    }
  }
  for (const Diagnostic& note : d.notes) out += RenderOne(note);
  return out;
}

std::string DiagnosticSink::RenderText() const {
  std::string out;
  for (const Diagnostic& d : diagnostics_) out += RenderOne(d);
  return out;
}

Status DiagnosticSink::FirstErrorStatus() const {
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity != Severity::kError) continue;
    std::string msg;
    if (d.span.valid()) {
      msg = "line " + std::to_string(d.span.line) + ":" +
            std::to_string(d.span.column) + ": ";
    }
    msg += d.message + " [" + d.code + "]";
    const bool syntactic = d.code.compare(0, 4, "PQL1") == 0;
    return syntactic ? Status::ParseError(std::move(msg))
                     : Status::AnalysisError(std::move(msg));
  }
  return Status::OK();
}

}  // namespace ariadne
