#ifndef ARIADNE_PQL_UDF_H_
#define ARIADNE_PQL_UDF_H_

#include <functional>
#include <span>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "common/value.h"

namespace ariadne {

/// PQL user-defined functions come in two flavours (paper §4.2 defines
/// boolean function calls; binding functions are our documented extension
/// used to expose analytic-specific derived facts like ALS prediction
/// error without touching the analytic):
///   * predicate UDFs: f(v...) holds or not;
///   * function UDFs: f(in..., out) binds `out` from the inputs (or
///     filters when `out` is already bound).
enum class UdfKind { kPredicate, kFunction };

struct Udf {
  UdfKind kind = UdfKind::kPredicate;
  /// Total argument count as written in queries (function UDFs include
  /// the output argument).
  int arity = 0;
  /// kPredicate: decides truth from all `arity` arguments.
  std::function<Result<bool>(std::span<const Value>)> predicate;
  /// kFunction: computes the output from the first `arity - 1` arguments.
  std::function<Result<Value>(std::span<const Value>)> function;
};

/// Name -> UDF resolution. `Default()` ships the built-ins the paper's
/// queries need:
///   udf-diff(d1, d2, eps)      predicate: diff(d1,d2) <= eps, where diff
///                              is |d1-d2| for numerics and the euclidean
///                              distance for double vectors
///   udf-large-diff(d1,d2,eps)  predicate: diff(d1,d2) >  eps
///   outside(v, lo, hi)         predicate: v < lo or v > hi
///   abs(x, out)                function
///   als-predict(f, m, out)     function: dot(f, m[0..k-1]) where m is an
///                              ALS message (features + rating)
///   als-rating(m, out)         function: m's trailing rating entry
///   euclidean(a, b, out)       function: euclidean distance
class UdfRegistry {
 public:
  UdfRegistry();

  void RegisterPredicate(
      const std::string& name, int arity,
      std::function<Result<bool>(std::span<const Value>)> fn);
  void RegisterFunction(
      const std::string& name, int input_arity,
      std::function<Result<Value>(std::span<const Value>)> fn);

  const Udf* Find(const std::string& name) const;

  /// Process-wide registry preloaded with the built-ins above.
  static const UdfRegistry& Default();

 private:
  std::unordered_map<std::string, Udf> udfs_;
};

}  // namespace ariadne

#endif  // ARIADNE_PQL_UDF_H_
