#ifndef ARIADNE_PQL_LINT_OUTPUT_H_
#define ARIADNE_PQL_LINT_OUTPUT_H_

#include <string>
#include <vector>

#include "pql/diagnostics.h"

namespace ariadne::lint {

/// All diagnostics collected for one linted file.
struct FileLintResult {
  std::string file;
  std::vector<Diagnostic> diagnostics;
};

/// Escapes a string for embedding in a JSON string literal (no quotes).
std::string JsonEscape(const std::string& s);

/// Machine-readable summary:
/// {"files": [{"file": ..., "diagnostics": [{"severity", "code",
/// "message", "line", "column", "length"}]}], "errors": N, "warnings": N}
std::string RenderJson(const std::vector<FileLintResult>& results);

/// SARIF 2.1.0 log with one run; rules are populated from the diagnostic
/// code registry, results carry ruleId/level/message and a physical
/// location (omitted for diagnostics without a source span).
std::string RenderSarif(const std::vector<FileLintResult>& results);

}  // namespace ariadne::lint

#endif  // ARIADNE_PQL_LINT_OUTPUT_H_
