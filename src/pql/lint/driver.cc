#include "pql/lint/driver.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "pql/analysis.h"
#include "pql/catalog.h"
#include "pql/diagnostics.h"
#include "pql/lint/fix.h"
#include "pql/lint/lint.h"
#include "pql/lint/output.h"
#include "pql/parser.h"
#include "pql/udf.h"

namespace ariadne::lint {
namespace {

constexpr char kUsage[] =
    "usage: ariadne_lint [options] <file.pql | directory>...\n"
    "\n"
    "Statically checks PQL programs: syntax, semantic analysis and lint\n"
    "passes, reporting every problem in one run with source spans.\n"
    "\n"
    "options:\n"
    "  --format text|json|sarif  output format (default text)\n"
    "  --Werror                  exit 1 when warnings were reported\n"
    "  --fix                     apply mechanical fixits in place, re-lint\n"
    "  --param NAME=VALUE        bind $NAME (int, double or string)\n"
    "  --stored NAME/ARITY       declare a stored relation (offline EDB)\n"
    "  --offline                 reject transient capture-time EDBs\n"
    "  --disable CODE            suppress a diagnostic code (e.g. PQL3002)\n"
    "  --explain CODE            print the description of a code and exit\n"
    "\n"
    "Files may embed per-file directives in `%!` comment pragmas:\n"
    "  %! stored prov-value/3\n"
    "  %! offline\n"
    "  %! param sigma=3\n"
    "\n"
    "Unbound $parameters are bound to 0 for linting (use --param for\n"
    "realistic values); pql_check keeps the strict contract.\n"
    "\n"
    "exit codes: 0 clean/warnings, 1 errors (or warnings with --Werror),\n"
    "2 usage or IO error\n";

Value ParseValueLiteral(const std::string& text) {
  if (!text.empty()) {
    char* end = nullptr;
    const long long i = std::strtoll(text.c_str(), &end, 10);
    if (end != nullptr && *end == '\0') return Value(static_cast<int64_t>(i));
    const double d = std::strtod(text.c_str(), &end);
    if (end != nullptr && *end == '\0') return Value(d);
  }
  return Value(text);
}

struct DriverConfig {
  std::string format = "text";
  bool werror = false;
  bool fix = false;
  bool offline = false;
  std::vector<std::pair<std::string, Value>> params;
  StoreSchema store;
  std::set<std::string> disabled;
};

/// Per-file config after merging `%!` pragmas into the global flags.
DriverConfig MergePragmas(const DriverConfig& base, const std::string& source) {
  DriverConfig cfg = base;
  size_t pos = 0;
  while (pos < source.size()) {
    size_t eol = source.find('\n', pos);
    if (eol == std::string::npos) eol = source.size();
    std::string line = source.substr(pos, eol - pos);
    pos = eol + 1;
    const size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line.compare(start, 2, "%!") != 0) {
      continue;
    }
    std::vector<std::string> words;
    std::string word;
    for (size_t i = start + 2; i <= line.size(); ++i) {
      if (i < line.size() && line[i] != ' ' && line[i] != '\t') {
        word.push_back(line[i]);
      } else if (!word.empty()) {
        words.push_back(std::move(word));
        word.clear();
      }
    }
    if (words.empty()) continue;
    if (words[0] == "offline") {
      cfg.offline = true;
    } else if (words[0] == "stored" && words.size() >= 2) {
      const size_t slash = words[1].rfind('/');
      if (slash != std::string::npos) {
        StoreSchema::Entry entry;
        entry.name = words[1].substr(0, slash);
        entry.arity = std::atoi(words[1].c_str() + slash + 1);
        cfg.store.relations.push_back(std::move(entry));
      }
    } else if (words[0] == "param" && words.size() >= 2) {
      const size_t eq = words[1].find('=');
      if (eq != std::string::npos) {
        cfg.params.emplace_back(words[1].substr(0, eq),
                                ParseValueLiteral(words[1].substr(eq + 1)));
      }
    }
  }
  return cfg;
}

/// Parses, analyzes and lints one source buffer into `sink`.
void LintSource(const std::string& file, const std::string& source,
                const DriverConfig& cfg, DiagnosticSink& sink) {
  sink.SetSource(file, source);
  Program program = ParseProgram(source, sink);
  const std::set<std::string> program_params = program.UnboundParameters();

  LintOptions lopts;
  lopts.disabled = cfg.disabled;
  for (const auto& [name, value] : cfg.params) {
    lopts.provided_params.push_back(name);
  }

  // Bind provided parameters; remaining ones get a neutral 0 so analysis
  // and plan-level lints still run (documented in --help).
  std::vector<std::pair<std::string, Value>> binds;
  for (const auto& [name, value] : cfg.params) {
    if (program_params.count(name) > 0) binds.emplace_back(name, value);
  }
  for (const std::string& name : program_params) {
    bool provided = false;
    for (const auto& [pname, v] : binds) {
      if (pname == name) {
        provided = true;
        break;
      }
    }
    if (!provided) binds.emplace_back(name, Value(static_cast<int64_t>(0)));
  }
  if (!binds.empty()) (void)program.BindParameters(binds);

  // After a syntax error the surviving rules are often missing their
  // context (a dropped rule's head looks like an unknown predicate), so
  // semantic analysis only runs on cleanly parsed programs; AST-level
  // lint passes still run either way.
  std::optional<AnalyzedQuery> query;
  if (!sink.has_errors()) {
    AnalyzeOptions aopts;
    aopts.allow_transient = !cfg.offline;
    auto analyzed =
        Analyze(program, Catalog::Default(), UdfRegistry::Default(),
                cfg.store.relations.empty() ? nullptr : &cfg.store, aopts,
                &sink);
    if (analyzed.ok()) query = std::move(*analyzed);
  }

  LintInput input;
  input.program = &program;
  input.query = query.has_value() ? &*query : nullptr;
  input.catalog = &Catalog::Default();
  input.udfs = &UdfRegistry::Default();
  input.store = cfg.store.relations.empty() ? nullptr : &cfg.store;
  input.program_params = program_params;
  RunLintPasses(input, lopts, sink);
  sink.SortBySpan();
}

}  // namespace

int RunAriadneLint(const std::vector<std::string>& args, std::string* out,
                   std::string* err) {
  DriverConfig cfg;
  std::vector<std::string> inputs;

  auto flag_value = [&](size_t& i, const std::string& flag,
                        std::string* value) {
    if (i + 1 >= args.size()) {
      *err += "ariadne_lint: " + flag + " requires an argument\n";
      return false;
    }
    *value = args[++i];
    return true;
  };

  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    std::string v;
    if (a == "--help" || a == "-h") {
      *out += kUsage;
      return 0;
    } else if (a == "--format") {
      if (!flag_value(i, a, &v)) return 2;
      if (v != "text" && v != "json" && v != "sarif") {
        *err += "ariadne_lint: unknown format '" + v + "'\n";
        return 2;
      }
      cfg.format = v;
    } else if (a == "--Werror") {
      cfg.werror = true;
    } else if (a == "--fix") {
      cfg.fix = true;
    } else if (a == "--offline") {
      cfg.offline = true;
    } else if (a == "--param") {
      if (!flag_value(i, a, &v)) return 2;
      const size_t eq = v.find('=');
      if (eq == std::string::npos) {
        *err += "ariadne_lint: --param expects NAME=VALUE\n";
        return 2;
      }
      cfg.params.emplace_back(v.substr(0, eq),
                              ParseValueLiteral(v.substr(eq + 1)));
    } else if (a == "--stored") {
      if (!flag_value(i, a, &v)) return 2;
      const size_t slash = v.rfind('/');
      if (slash == std::string::npos) {
        *err += "ariadne_lint: --stored expects NAME/ARITY\n";
        return 2;
      }
      StoreSchema::Entry entry;
      entry.name = v.substr(0, slash);
      entry.arity = std::atoi(v.c_str() + slash + 1);
      cfg.store.relations.push_back(std::move(entry));
    } else if (a == "--disable") {
      if (!flag_value(i, a, &v)) return 2;
      cfg.disabled.insert(v);
    } else if (a == "--explain") {
      if (!flag_value(i, a, &v)) return 2;
      const char* desc = DiagCodeDescription(v);
      if (desc == nullptr) {
        *err += "ariadne_lint: unknown diagnostic code '" + v + "'\n";
        return 2;
      }
      *out += v + ": " + desc + "\n";
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      *err += "ariadne_lint: unknown option '" + a + "'\n" + kUsage;
      return 2;
    } else {
      inputs.push_back(a);
    }
  }
  if (inputs.empty()) {
    *err += kUsage;
    return 2;
  }

  // Expand directories to their .pql files (sorted, recursive).
  std::vector<std::string> files;
  for (const std::string& input : inputs) {
    std::error_code ec;
    if (std::filesystem::is_directory(input, ec)) {
      std::vector<std::string> found;
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(input, ec)) {
        if (entry.is_regular_file() && entry.path().extension() == ".pql") {
          found.push_back(entry.path().string());
        }
      }
      if (ec) {
        *err += "ariadne_lint: cannot read directory " + input + ": " +
                ec.message() + "\n";
        return 2;
      }
      std::sort(found.begin(), found.end());
      if (found.empty()) {
        *err += "ariadne_lint: no .pql files under " + input + "\n";
        return 2;
      }
      files.insert(files.end(), found.begin(), found.end());
    } else {
      files.push_back(input);
    }
  }

  std::vector<FileLintResult> results;
  size_t total_errors = 0;
  size_t total_warnings = 0;
  int fixes_applied = 0;
  for (const std::string& file : files) {
    auto source = ReadFile(file);
    if (!source.ok()) {
      *err += "ariadne_lint: cannot read " + file + ": " +
              source.status().message() + "\n";
      return 2;
    }
    DriverConfig file_cfg = MergePragmas(cfg, *source);
    DiagnosticSink sink;
    LintSource(file, *source, file_cfg, sink);

    if (cfg.fix) {
      int applied = 0;
      const std::string fixed =
          ApplyFixits(*source, sink.diagnostics(), &applied);
      if (applied > 0) {
        Status written = WriteFile(file, fixed);
        if (!written.ok()) {
          *err += "ariadne_lint: cannot write " + file + ": " +
                  written.message() + "\n";
          return 2;
        }
        fixes_applied += applied;
        // Re-lint the rewritten source; remaining diagnostics are what
        // the user still has to address by hand.
        DiagnosticSink fixed_sink;
        LintSource(file, fixed, file_cfg, fixed_sink);
        sink = std::move(fixed_sink);
      }
    }

    total_errors += sink.error_count();
    total_warnings += sink.warning_count();
    if (cfg.format == "text") {
      *out += sink.RenderText();
    } else {
      FileLintResult result;
      result.file = file;
      result.diagnostics = sink.diagnostics();
      results.push_back(std::move(result));
    }
  }

  if (cfg.format == "json") {
    *out += RenderJson(results);
  } else if (cfg.format == "sarif") {
    *out += RenderSarif(results);
  } else {
    if (fixes_applied > 0) {
      *out += "applied " + std::to_string(fixes_applied) + " fix" +
              (fixes_applied == 1 ? "" : "es") + "\n";
    }
    *out += std::to_string(files.size()) + " file" +
            (files.size() == 1 ? "" : "s") + " checked: " +
            std::to_string(total_errors) + " error" +
            (total_errors == 1 ? "" : "s") + ", " +
            std::to_string(total_warnings) + " warning" +
            (total_warnings == 1 ? "" : "s");
    if (cfg.werror && total_warnings > 0) *out += " (warnings as errors)";
    *out += "\n";
  }

  if (total_errors > 0) return 1;
  if (cfg.werror && total_warnings > 0) return 1;
  return 0;
}

}  // namespace ariadne::lint
