#ifndef ARIADNE_PQL_LINT_LINT_H_
#define ARIADNE_PQL_LINT_LINT_H_

#include <set>
#include <string>
#include <vector>

#include "pql/analysis.h"
#include "pql/ast.h"
#include "pql/catalog.h"
#include "pql/diagnostics.h"
#include "pql/udf.h"

namespace ariadne::lint {

struct LintOptions {
  /// Parameter names supplied by the caller (--param / %! param pragmas);
  /// the unused-parameter pass warns about provided-but-unused ones.
  std::vector<std::string> provided_params;
  /// Diagnostic codes to suppress (--disable PQL3002).
  std::set<std::string> disabled;
};

/// Everything a lint pass may look at. `query` is null when semantic
/// analysis failed; AST-only passes still run so a broken program gets
/// its full diagnosis in one invocation.
struct LintInput {
  const Program* program = nullptr;
  const AnalyzedQuery* query = nullptr;  ///< null when analysis failed
  const Catalog* catalog = nullptr;
  const UdfRegistry* udfs = nullptr;
  const StoreSchema* store = nullptr;  ///< may be null
  /// $parameters the program mentioned (collected before binding).
  std::set<std::string> program_params;
};

/// One lint pass. Passes emit PQL3xxx warnings into the sink; they must
/// not emit errors (errors belong to the parser / analyzer).
class LintPass {
 public:
  virtual ~LintPass() = default;
  virtual const char* name() const = 0;
  /// The diagnostic code this pass emits (primary; used by --disable).
  virtual const char* code() const = 0;
  /// True when the pass replays the compiled plan and therefore needs a
  /// successfully analyzed query.
  virtual bool needs_query() const { return false; }
  virtual void Run(const LintInput& input, const LintOptions& options,
                   DiagnosticSink& sink) const = 0;
};

/// All built-in passes, in emission-code order.
const std::vector<const LintPass*>& LintRegistry();

/// Runs every enabled pass (skipping query-needing passes when
/// input.query is null and passes whose code is in options.disabled).
void RunLintPasses(const LintInput& input, const LintOptions& options,
                   DiagnosticSink& sink);

}  // namespace ariadne::lint

#endif  // ARIADNE_PQL_LINT_LINT_H_
