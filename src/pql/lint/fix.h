#ifndef ARIADNE_PQL_LINT_FIX_H_
#define ARIADNE_PQL_LINT_FIX_H_

#include <string>
#include <vector>

#include "pql/diagnostics.h"

namespace ariadne::lint {

/// Applies every FixIt attached to `diagnostics` to `source` and returns
/// the rewritten text. Fixits are applied back-to-front by byte offset so
/// earlier edits do not shift later spans; overlapping fixits are skipped
/// (first by offset order wins). `applied`, when non-null, receives the
/// number of fixits actually applied.
std::string ApplyFixits(const std::string& source,
                        const std::vector<Diagnostic>& diagnostics,
                        int* applied = nullptr);

}  // namespace ariadne::lint

#endif  // ARIADNE_PQL_LINT_FIX_H_
