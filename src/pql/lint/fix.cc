#include "pql/lint/fix.h"

#include <algorithm>

namespace ariadne::lint {

std::string ApplyFixits(const std::string& source,
                        const std::vector<Diagnostic>& diagnostics,
                        int* applied) {
  std::vector<const FixIt*> fixes;
  for (const Diagnostic& d : diagnostics) {
    for (const FixIt& f : d.fixits) {
      if (f.span.offset + static_cast<size_t>(f.span.length) <=
          source.size()) {
        fixes.push_back(&f);
      }
    }
  }
  // Descending offset: splicing at the back never shifts pending spans.
  std::stable_sort(fixes.begin(), fixes.end(),
                   [](const FixIt* a, const FixIt* b) {
                     return a->span.offset > b->span.offset;
                   });
  std::string out = source;
  int count = 0;
  size_t low_water = source.size() + 1;  // start of the last applied edit
  for (const FixIt* f : fixes) {
    const size_t start = f->span.offset;
    const size_t end = start + static_cast<size_t>(f->span.length);
    if (end > low_water) continue;  // overlaps a later (already applied) edit
    out.replace(start, end - start, f->replacement);
    low_water = start;
    ++count;
  }
  if (applied != nullptr) *applied = count;
  return out;
}

}  // namespace ariadne::lint
