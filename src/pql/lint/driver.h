#ifndef ARIADNE_PQL_LINT_DRIVER_H_
#define ARIADNE_PQL_LINT_DRIVER_H_

#include <string>
#include <vector>

namespace ariadne::lint {

/// The `ariadne_lint` command line, testable without a process boundary.
/// `args` excludes argv[0]; normal output is appended to `out`,
/// usage/IO errors to `err`.
///
/// Exit codes (same contract as pql_check):
///   0  clean, or warnings only (without --Werror)
///   1  diagnostics with error severity, or warnings under --Werror
///   2  usage error or file IO failure
int RunAriadneLint(const std::vector<std::string>& args, std::string* out,
                   std::string* err);

}  // namespace ariadne::lint

#endif  // ARIADNE_PQL_LINT_DRIVER_H_
