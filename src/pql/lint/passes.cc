#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "pql/lint/lint.h"

namespace ariadne::lint {
namespace {

// ---------------------------------------------------------------------------
// Shared helpers

struct VarOcc {
  std::string name;
  Span span;
  bool in_head = false;
};

void CollectVarOccurrences(const Term& t, bool in_head,
                           std::vector<VarOcc>& out) {
  switch (t.kind) {
    case Term::Kind::kVariable:
      out.push_back(VarOcc{t.name, t.span, in_head});
      break;
    case Term::Kind::kArith:
      CollectVarOccurrences(*t.lhs, in_head, out);
      CollectVarOccurrences(*t.rhs, in_head, out);
      break;
    default:
      break;
  }
}

std::vector<VarOcc> RuleVarOccurrences(const Rule& rule) {
  std::vector<VarOcc> occ;
  for (const HeadTerm& h : rule.head) {
    if (h.is_aggregate) {
      CollectVarOccurrences(h.aggregate_arg, /*in_head=*/true, occ);
    } else {
      CollectVarOccurrences(h.term, /*in_head=*/true, occ);
    }
  }
  for (const BodyLiteral& lit : rule.body) {
    if (lit.kind == BodyLiteral::Kind::kAtom) {
      for (const Term& t : lit.atom.args) {
        CollectVarOccurrences(t, /*in_head=*/false, occ);
      }
    } else {
      CollectVarOccurrences(lit.comparison.lhs, /*in_head=*/false, occ);
      CollectVarOccurrences(lit.comparison.rhs, /*in_head=*/false, occ);
    }
  }
  return occ;
}

void PoolTermVars(const CompiledRule& rule, int idx, std::set<int>& out) {
  const CTerm& t = rule.term_pool[static_cast<size_t>(idx)];
  if (t.kind == CTerm::Kind::kVar) {
    out.insert(t.var);
  } else if (t.kind == CTerm::Kind::kArith) {
    PoolTermVars(rule, t.lhs, out);
    PoolTermVars(rule, t.rhs, out);
  }
}

bool PoolTermBound(const CompiledRule& rule, int idx,
                   const std::set<int>& bound) {
  std::set<int> vars;
  PoolTermVars(rule, idx, vars);
  for (int v : vars) {
    if (bound.count(v) == 0) return false;
  }
  return true;
}

/// One positive atom as the compiled plan evaluates it.
struct AtomStep {
  size_t body_idx = 0;
  int bound_args = 0;  ///< argument positions already bound when evaluated
  int arity = 0;
};

/// Replays eval_order with the same binding semantics as the planner,
/// yielding the positive atoms in evaluation order with the number of
/// bound argument positions each one is probed with.
std::vector<AtomStep> ReplayPlan(const CompiledRule& rule) {
  std::set<int> bound;
  std::vector<AtomStep> steps;
  auto bind_plain = [&](int term_idx) {
    const CTerm& t = rule.term_pool[static_cast<size_t>(term_idx)];
    if (t.kind == CTerm::Kind::kVar) bound.insert(t.var);
  };
  for (size_t k : rule.eval_order) {
    const CLiteral& cl = rule.body[k];
    switch (cl.kind) {
      case CLiteral::Kind::kComparison:
        if (cl.cmp_op == ComparisonOp::kEq) {
          bind_plain(cl.cmp_lhs);
          bind_plain(cl.cmp_rhs);
        }
        break;
      case CLiteral::Kind::kUdf:
        if (cl.udf != nullptr && cl.udf->kind == UdfKind::kFunction &&
            !cl.udf_args.empty()) {
          bind_plain(cl.udf_args.back());
        }
        break;
      case CLiteral::Kind::kAtom: {
        if (cl.negated) break;
        AtomStep step;
        step.body_idx = k;
        step.arity = static_cast<int>(cl.args.size());
        for (int arg : cl.args) {
          if (PoolTermBound(rule, arg, bound)) ++step.bound_args;
        }
        steps.push_back(step);
        for (int arg : cl.args) bind_plain(arg);
        break;
      }
    }
  }
  return steps;
}

/// Lowercases and strips `-`/`_` so `Receive_Message` ~ `receive-message`.
std::string NormalizePredName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if (c == '-' || c == '_') continue;
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::optional<Value> FoldTerm(const Term& t) {
  switch (t.kind) {
    case Term::Kind::kConstant:
      return t.constant;
    case Term::Kind::kArith: {
      auto lhs = FoldTerm(*t.lhs);
      auto rhs = FoldTerm(*t.rhs);
      if (!lhs || !rhs) return std::nullopt;
      Result<Value> folded = Status::OK();
      switch (t.op) {
        case '+':
          folded = lhs->Add(*rhs);
          break;
        case '-':
          folded = lhs->Sub(*rhs);
          break;
        case '*':
          folded = lhs->Mul(*rhs);
          break;
        case '/':
          folded = lhs->Div(*rhs);
          break;
        default:
          return std::nullopt;
      }
      if (!folded.ok()) return std::nullopt;
      return *folded;
    }
    default:
      return std::nullopt;
  }
}

// ---------------------------------------------------------------------------
// PQL3001: rules no query output depends on

class UnreachableRulePass final : public LintPass {
 public:
  const char* name() const override { return "unreachable-rule"; }
  const char* code() const override { return "PQL3001"; }
  void Run(const LintInput& input, const LintOptions&,
           DiagnosticSink& sink) const override {
    const Program& program = *input.program;
    std::map<std::string, std::vector<const Rule*>> defined;
    for (const Rule& rule : program.rules) {
      defined[rule.head_predicate].push_back(&rule);
    }
    // A defined predicate is an output root unless some rule with a
    // *different* head reads it (self-recursion does not consume).
    std::set<std::string> consumed;
    for (const Rule& rule : program.rules) {
      for (const BodyLiteral& lit : rule.body) {
        if (lit.kind != BodyLiteral::Kind::kAtom) continue;
        const std::string& read = lit.atom.predicate;
        if (read != rule.head_predicate && defined.count(read) > 0) {
          consumed.insert(read);
        }
      }
    }
    std::vector<std::string> work;
    std::set<std::string> reachable;
    for (const auto& [name, rules] : defined) {
      if (consumed.count(name) == 0) {
        reachable.insert(name);
        work.push_back(name);
      }
    }
    while (!work.empty()) {
      const std::string name = std::move(work.back());
      work.pop_back();
      for (const Rule* rule : defined[name]) {
        for (const BodyLiteral& lit : rule->body) {
          if (lit.kind != BodyLiteral::Kind::kAtom) continue;
          const std::string& read = lit.atom.predicate;
          if (defined.count(read) > 0 && reachable.insert(read).second) {
            work.push_back(read);
          }
        }
      }
    }
    for (const auto& [name, rules] : defined) {
      if (reachable.count(name) > 0) continue;
      for (const Rule* rule : rules) {
        sink.Warning(code(), rule->name_span,
                     "rule defines '" + name +
                         "', which no query output depends on "
                         "(unreachable rule)");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// PQL3002: body variable used exactly once

class SingletonVariablePass final : public LintPass {
 public:
  const char* name() const override { return "singleton-variable"; }
  const char* code() const override { return "PQL3002"; }
  void Run(const LintInput& input, const LintOptions&,
           DiagnosticSink& sink) const override {
    for (const Rule& rule : input.program->rules) {
      const std::vector<VarOcc> occ = RuleVarOccurrences(rule);
      std::map<std::string, int> counts;
      for (const VarOcc& o : occ) ++counts[o.name];
      for (const VarOcc& o : occ) {
        if (counts[o.name] != 1 || o.in_head) continue;
        if (!o.name.empty() && o.name[0] == '_') continue;
        Diagnostic& d = sink.Warning(
            code(), o.span,
            "variable '" + o.name +
                "' is used only once; prefix with '_' if intentional");
        FixIt fix;
        fix.span = o.span;
        fix.replacement = "_" + o.name;
        d.fixits.push_back(std::move(fix));
      }
    }
  }
};

// ---------------------------------------------------------------------------
// PQL3003 / PQL3004: shadowing and confusable predicate names

class ShadowedPredicatePass final : public LintPass {
 public:
  const char* name() const override { return "shadowed-predicate"; }
  const char* code() const override { return "PQL3003"; }
  void Run(const LintInput& input, const LintOptions& options,
           DiagnosticSink& sink) const override {
    std::map<std::string, std::string> builtin_by_norm;
    for (const EdbSchema& e : input.catalog->entries()) {
      builtin_by_norm[NormalizePredName(e.name)] = e.name;
    }
    std::set<std::string> reported_shadow;
    std::set<std::string> reported_confusable;
    auto check_confusable = [&](const std::string& name, const Span& span) {
      if (options.disabled.count("PQL3004") > 0) return;
      if (input.catalog->Find(name) != nullptr) return;  // exact or alias
      if (input.udfs != nullptr && input.udfs->Find(name) != nullptr) return;
      if (input.store != nullptr && input.store->Find(name) != nullptr) return;
      auto it = builtin_by_norm.find(NormalizePredName(name));
      if (it == builtin_by_norm.end()) return;
      if (!reported_confusable.insert(name).second) return;
      sink.Warning("PQL3004", span,
                   "predicate '" + name +
                       "' is confusingly similar to built-in '" + it->second +
                       "'");
    };
    for (const Rule& rule : input.program->rules) {
      if (input.store != nullptr &&
          input.store->Find(rule.head_predicate) != nullptr &&
          reported_shadow.insert(rule.head_predicate).second) {
        sink.Warning(code(), rule.name_span,
                     "rule head '" + rule.head_predicate +
                         "' shadows a stored relation of the same name");
      }
      check_confusable(rule.head_predicate, rule.name_span);
      for (const BodyLiteral& lit : rule.body) {
        if (lit.kind != BodyLiteral::Kind::kAtom) continue;
        check_confusable(lit.atom.predicate, lit.atom.name_span);
      }
    }
  }
};

// ---------------------------------------------------------------------------
// PQL3005: join with no shared bound variables

class CartesianProductPass final : public LintPass {
 public:
  const char* name() const override { return "cartesian-product"; }
  const char* code() const override { return "PQL3005"; }
  bool needs_query() const override { return true; }
  void Run(const LintInput& input, const LintOptions&,
           DiagnosticSink& sink) const override {
    for (const CompiledRule& rule : input.query->rules()) {
      const std::vector<AtomStep> steps = ReplayPlan(rule);
      for (size_t s = 1; s < steps.size(); ++s) {
        if (steps[s].arity == 0 || steps[s].bound_args > 0) continue;
        const CLiteral& cl = rule.body[steps[s].body_idx];
        sink.Warning(code(), cl.span,
                     "atom '" + input.query->pred(cl.pred).name +
                         "' shares no bound variables with earlier atoms "
                         "(cartesian product)");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// PQL3006: negating a recursive predicate

class NegatedRecursionPass final : public LintPass {
 public:
  const char* name() const override { return "negated-recursion"; }
  const char* code() const override { return "PQL3006"; }
  bool needs_query() const override { return true; }
  void Run(const LintInput& input, const LintOptions&,
           DiagnosticSink& sink) const override {
    const AnalyzedQuery& q = *input.query;
    // pred -> IDB preds its defining rules read.
    std::map<int, std::set<int>> deps;
    for (const CompiledRule& rule : q.rules()) {
      for (int p : rule.body_preds) {
        if (q.pred(p).is_idb()) deps[rule.head_pred].insert(p);
      }
    }
    auto recursive = [&](int start) {
      std::vector<int> work(deps[start].begin(), deps[start].end());
      std::set<int> seen(work.begin(), work.end());
      while (!work.empty()) {
        const int p = work.back();
        work.pop_back();
        if (p == start) return true;
        for (int next : deps[p]) {
          if (seen.insert(next).second) work.push_back(next);
        }
      }
      return false;
    };
    for (const CompiledRule& rule : q.rules()) {
      for (const CLiteral& cl : rule.body) {
        if (cl.kind != CLiteral::Kind::kAtom || !cl.negated) continue;
        if (!q.pred(cl.pred).is_idb() || !recursive(cl.pred)) continue;
        sink.Warning(code(), cl.span,
                     "negation over recursive predicate '" +
                         q.pred(cl.pred).name +
                         "' — its extent may grow across layers, making "
                         "the negation expensive to maintain online");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// PQL3007 / PQL3008: constant-foldable comparisons

class ConstantComparisonPass final : public LintPass {
 public:
  const char* name() const override { return "constant-comparison"; }
  const char* code() const override { return "PQL3007"; }
  void Run(const LintInput& input, const LintOptions& options,
           DiagnosticSink& sink) const override {
    for (const Rule& rule : input.program->rules) {
      for (size_t k = 0; k < rule.body.size(); ++k) {
        const BodyLiteral& lit = rule.body[k];
        if (lit.kind != BodyLiteral::Kind::kComparison) continue;
        const auto lhs = FoldTerm(lit.comparison.lhs);
        const auto rhs = FoldTerm(lit.comparison.rhs);
        if (!lhs || !rhs) continue;
        const Result<int> cmp = lhs->NumericCompare(*rhs);
        if (!cmp.ok()) continue;
        bool truth = false;
        switch (lit.comparison.op) {
          case ComparisonOp::kEq: truth = *cmp == 0; break;
          case ComparisonOp::kNe: truth = *cmp != 0; break;
          case ComparisonOp::kLt: truth = *cmp < 0; break;
          case ComparisonOp::kLe: truth = *cmp <= 0; break;
          case ComparisonOp::kGt: truth = *cmp > 0; break;
          case ComparisonOp::kGe: truth = *cmp >= 0; break;
        }
        if (truth) {
          Diagnostic& d = sink.Warning(
              code(), lit.span(),
              "comparison '" + lit.ToString() +
                  "' is always true (redundant literal)");
          AddRemovalFixit(rule, k, d);
        } else if (options.disabled.count("PQL3008") == 0) {
          sink.Warning("PQL3008", lit.span(),
                       "comparison '" + lit.ToString() +
                           "' is always false (rule can never fire)");
        }
      }
    }
  }

 private:
  /// Removes body literal `k` together with one adjacent comma: the span
  /// from the end of the previous literal (covering ", lit") or, for the
  /// first of several literals, from its start to the next literal's
  /// start. A one-literal body gets no fixit (the rule would be emptied).
  static void AddRemovalFixit(const Rule& rule, size_t k, Diagnostic& d) {
    const Span& cur = rule.body[k].span();
    if (!cur.valid()) return;
    FixIt fix;
    fix.replacement = "";
    if (k > 0) {
      const Span& prev = rule.body[k - 1].span();
      if (!prev.valid()) return;
      const size_t start = prev.offset + static_cast<size_t>(prev.length);
      fix.span = cur;
      fix.span.offset = start;
      fix.span.length =
          static_cast<int>(cur.offset + static_cast<size_t>(cur.length) - start);
    } else if (rule.body.size() > 1) {
      const Span& next = rule.body[1].span();
      if (!next.valid()) return;
      fix.span = cur;
      fix.span.length = static_cast<int>(next.offset - cur.offset);
    } else {
      return;
    }
    d.fixits.push_back(std::move(fix));
  }
};

// ---------------------------------------------------------------------------
// PQL3009: parameter provided but never used

class UnusedParameterPass final : public LintPass {
 public:
  const char* name() const override { return "unused-parameter"; }
  const char* code() const override { return "PQL3009"; }
  void Run(const LintInput& input, const LintOptions& options,
           DiagnosticSink& sink) const override {
    std::set<std::string> reported;
    for (const std::string& name : options.provided_params) {
      if (input.program_params.count(name) > 0) continue;
      if (!reported.insert(name).second) continue;
      sink.Warning(code(), Span{},
                   "parameter $" + name +
                       " was provided but the program never uses it");
    }
  }
};

// ---------------------------------------------------------------------------
// PQL3010: nested full scans in the compiled plan

class FullScanPlanPass final : public LintPass {
 public:
  const char* name() const override { return "full-scan-plan"; }
  const char* code() const override { return "PQL3010"; }
  bool needs_query() const override { return true; }
  void Run(const LintInput& input, const LintOptions&,
           DiagnosticSink& sink) const override {
    for (const CompiledRule& rule : input.query->rules()) {
      int full_scans = 0;
      for (const AtomStep& step : ReplayPlan(rule)) {
        if (step.arity > 0 && step.bound_args == 0) ++full_scans;
      }
      if (full_scans < 2) continue;
      sink.Warning(code(), rule.name_span,
                   "plan evaluates " + std::to_string(full_scans) +
                       " atoms with no bound columns (estimated O(N^" +
                       std::to_string(full_scans) +
                       ") nested full scans); add a join variable or "
                       "comparison binding");
    }
  }
};

}  // namespace

const std::vector<const LintPass*>& LintRegistry() {
  static const UnreachableRulePass unreachable;
  static const SingletonVariablePass singleton;
  static const ShadowedPredicatePass shadowed;
  static const CartesianProductPass cartesian;
  static const NegatedRecursionPass negated_recursion;
  static const ConstantComparisonPass constant_comparison;
  static const UnusedParameterPass unused_parameter;
  static const FullScanPlanPass full_scan;
  static const std::vector<const LintPass*> passes = {
      &unreachable,        &singleton,           &shadowed, &cartesian,
      &negated_recursion,  &constant_comparison, &unused_parameter,
      &full_scan,
  };
  return passes;
}

void RunLintPasses(const LintInput& input, const LintOptions& options,
                   DiagnosticSink& sink) {
  for (const LintPass* pass : LintRegistry()) {
    if (options.disabled.count(pass->code()) > 0) continue;
    if (pass->needs_query() && input.query == nullptr) continue;
    if (input.program == nullptr && !pass->needs_query() &&
        std::string(pass->code()) != "PQL3009") {
      continue;
    }
    pass->Run(input, options, sink);
  }
}

}  // namespace ariadne::lint
