#include "pql/lint/output.h"

#include <cstdio>
#include <set>

namespace ariadne::lint {
namespace {

const char* SarifLevel(Severity s) {
  switch (s) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "none";
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string RenderJson(const std::vector<FileLintResult>& results) {
  size_t errors = 0;
  size_t warnings = 0;
  std::string out = "{\n  \"files\": [";
  for (size_t f = 0; f < results.size(); ++f) {
    if (f > 0) out += ",";
    out += "\n    {\n      \"file\": \"" + JsonEscape(results[f].file) +
           "\",\n      \"diagnostics\": [";
    const auto& diags = results[f].diagnostics;
    for (size_t i = 0; i < diags.size(); ++i) {
      const Diagnostic& d = diags[i];
      if (d.severity == Severity::kError) ++errors;
      if (d.severity == Severity::kWarning) ++warnings;
      if (i > 0) out += ",";
      out += "\n        {\"severity\": \"";
      out += SeverityToString(d.severity);
      out += "\", \"code\": \"" + JsonEscape(d.code) + "\", \"message\": \"" +
             JsonEscape(d.message) + "\", \"line\": " +
             std::to_string(d.span.line) +
             ", \"column\": " + std::to_string(d.span.column) +
             ", \"length\": " + std::to_string(d.span.length) + "}";
    }
    if (!diags.empty()) out += "\n      ";
    out += "]\n    }";
  }
  if (!results.empty()) out += "\n  ";
  out += "],\n  \"errors\": " + std::to_string(errors) +
         ",\n  \"warnings\": " + std::to_string(warnings) + "\n}\n";
  return out;
}

std::string RenderSarif(const std::vector<FileLintResult>& results) {
  std::string out =
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"ariadne_lint\",\n"
      "          \"informationUri\": "
      "\"https://example.invalid/ariadne\",\n"
      "          \"rules\": [";
  // Only rules that actually fired, keeping the log small and the rule
  // index stable for schema validators.
  std::set<std::string> fired;
  for (const FileLintResult& r : results) {
    for (const Diagnostic& d : r.diagnostics) fired.insert(d.code);
  }
  bool first = true;
  for (const std::string& code : AllDiagCodes()) {
    if (fired.count(code) == 0) continue;
    if (!first) out += ",";
    first = false;
    const char* desc = DiagCodeDescription(code);
    out += "\n            {\"id\": \"" + JsonEscape(code) +
           "\", \"shortDescription\": {\"text\": \"" +
           JsonEscape(desc != nullptr ? desc : "") + "\"}}";
  }
  if (!first) out += "\n          ";
  out +=
      "]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [";
  first = true;
  for (const FileLintResult& r : results) {
    for (const Diagnostic& d : r.diagnostics) {
      if (!first) out += ",";
      first = false;
      out += "\n        {\"ruleId\": \"" + JsonEscape(d.code) +
             "\", \"level\": \"";
      out += SarifLevel(d.severity);
      out += "\", \"message\": {\"text\": \"" + JsonEscape(d.message) + "\"}";
      if (d.span.valid()) {
        out += ", \"locations\": [{\"physicalLocation\": "
               "{\"artifactLocation\": {\"uri\": \"" +
               JsonEscape(r.file) + "\"}, \"region\": {\"startLine\": " +
               std::to_string(d.span.line) +
               ", \"startColumn\": " + std::to_string(d.span.column) +
               ", \"endColumn\": " +
               std::to_string(d.span.column + d.span.length) + "}}}]";
      }
      out += "}";
    }
  }
  if (!first) out += "\n      ";
  out +=
      "]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

}  // namespace ariadne::lint
