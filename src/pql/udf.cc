#include "pql/udf.h"

#include <cmath>

#include "analytics/linalg.h"

namespace ariadne {

namespace {

/// |a-b| for numerics, euclidean distance for double vectors.
Result<double> GenericDiff(const Value& a, const Value& b) {
  if (a.is_double_vector() && b.is_double_vector()) {
    if (a.AsDoubleVector().size() != b.AsDoubleVector().size()) {
      return Status::InvalidArgument("vector arity mismatch in udf-diff");
    }
    return EuclideanDistance(a.AsDoubleVector(), b.AsDoubleVector());
  }
  ARIADNE_ASSIGN_OR_RETURN(double x, a.ToDouble());
  ARIADNE_ASSIGN_OR_RETURN(double y, b.ToDouble());
  return std::fabs(x - y);
}

}  // namespace

UdfRegistry::UdfRegistry() {
  RegisterPredicate("udf-diff", 3,
                    [](std::span<const Value> args) -> Result<bool> {
                      ARIADNE_ASSIGN_OR_RETURN(double d,
                                               GenericDiff(args[0], args[1]));
                      ARIADNE_ASSIGN_OR_RETURN(double eps, args[2].ToDouble());
                      return d <= eps;
                    });
  RegisterPredicate("udf-large-diff", 3,
                    [](std::span<const Value> args) -> Result<bool> {
                      ARIADNE_ASSIGN_OR_RETURN(double d,
                                               GenericDiff(args[0], args[1]));
                      ARIADNE_ASSIGN_OR_RETURN(double eps, args[2].ToDouble());
                      return d > eps;
                    });
  RegisterPredicate("outside", 3,
                    [](std::span<const Value> args) -> Result<bool> {
                      ARIADNE_ASSIGN_OR_RETURN(double v, args[0].ToDouble());
                      ARIADNE_ASSIGN_OR_RETURN(double lo, args[1].ToDouble());
                      ARIADNE_ASSIGN_OR_RETURN(double hi, args[2].ToDouble());
                      return v < lo || v > hi;
                    });
  RegisterFunction("abs", 1,
                   [](std::span<const Value> args) -> Result<Value> {
                     ARIADNE_ASSIGN_OR_RETURN(double v, args[0].ToDouble());
                     return Value(std::fabs(v));
                   });
  RegisterFunction(
      "euclidean", 2, [](std::span<const Value> args) -> Result<Value> {
        if (!args[0].is_double_vector() || !args[1].is_double_vector()) {
          return Status::InvalidArgument("euclidean expects double vectors");
        }
        if (args[0].AsDoubleVector().size() !=
            args[1].AsDoubleVector().size()) {
          return Status::InvalidArgument("euclidean arity mismatch");
        }
        return Value(EuclideanDistance(args[0].AsDoubleVector(),
                                       args[1].AsDoubleVector()));
      });
  RegisterFunction(
      "als-predict", 2, [](std::span<const Value> args) -> Result<Value> {
        if (!args[0].is_double_vector() || !args[1].is_double_vector()) {
          return Status::InvalidArgument("als-predict expects double vectors");
        }
        const auto& features = args[0].AsDoubleVector();
        const auto& message = args[1].AsDoubleVector();
        if (message.size() != features.size() + 1) {
          return Status::InvalidArgument(
              "als-predict: message must be features + rating");
        }
        double dot = 0;
        for (size_t i = 0; i < features.size(); ++i) {
          dot += features[i] * message[i];
        }
        return Value(dot);
      });
  RegisterFunction("als-rating", 1,
                   [](std::span<const Value> args) -> Result<Value> {
                     if (!args[0].is_double_vector() ||
                         args[0].AsDoubleVector().empty()) {
                       return Status::InvalidArgument(
                           "als-rating expects a non-empty double vector");
                     }
                     return Value(args[0].AsDoubleVector().back());
                   });
}

void UdfRegistry::RegisterPredicate(
    const std::string& name, int arity,
    std::function<Result<bool>(std::span<const Value>)> fn) {
  Udf udf;
  udf.kind = UdfKind::kPredicate;
  udf.arity = arity;
  udf.predicate = std::move(fn);
  udfs_[name] = std::move(udf);
}

void UdfRegistry::RegisterFunction(
    const std::string& name, int input_arity,
    std::function<Result<Value>(std::span<const Value>)> fn) {
  Udf udf;
  udf.kind = UdfKind::kFunction;
  udf.arity = input_arity + 1;
  udf.function = std::move(fn);
  udfs_[name] = std::move(udf);
}

const Udf* UdfRegistry::Find(const std::string& name) const {
  auto it = udfs_.find(name);
  return it == udfs_.end() ? nullptr : &it->second;
}

const UdfRegistry& UdfRegistry::Default() {
  static const UdfRegistry* kInstance = new UdfRegistry();
  return *kInstance;
}

}  // namespace ariadne
