#include "pql/evaluator.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <functional>
#include <limits>
#include <map>
#include <span>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/timer.h"

namespace ariadne {

Relation& Database::Rel(int pred) {
  const size_t n = static_cast<size_t>(query_->num_preds());
  if (rels_.size() < n) rels_.resize(n);
  auto& slot = rels_[static_cast<size_t>(pred)];
  if (slot == nullptr) {
    slot = std::make_unique<Relation>(query_->pred(pred).arity);
  }
  return *slot;
}

const Relation* Database::RelIfExists(int pred) const {
  if (static_cast<size_t>(pred) >= rels_.size()) return nullptr;
  return rels_[static_cast<size_t>(pred)].get();
}

size_t Database::TotalBytes() const {
  size_t bytes = 0;
  for (const auto& rel : rels_) {
    if (rel != nullptr) bytes += rel->byte_size();
  }
  return bytes;
}

size_t Database::TotalTuples() const {
  size_t n = 0;
  for (const auto& rel : rels_) {
    if (rel != nullptr) n += rel->size();
  }
  return n;
}

uint64_t Database::VersionSum(const std::vector<int>& preds) const {
  uint64_t sum = 0;
  for (int p : preds) {
    const Relation* rel = RelIfExists(p);
    if (rel != nullptr) sum += rel->version();
  }
  return sum;
}

void RuleEvalStats::Merge(const RuleEvalStats& o) {
  evaluations += o.evaluations;
  rows_scanned += o.rows_scanned;
  index_probes += o.index_probes;
  probe_rows += o.probe_rows;
  index_builds += o.index_builds;
  delta_rescans += o.delta_rescans;
  derived += o.derived;
  seconds += o.seconds;
}

void EvalStats::Merge(const EvalStats& o) {
  if (rules.size() < o.rules.size()) rules.resize(o.rules.size());
  for (size_t i = 0; i < o.rules.size(); ++i) rules[i].Merge(o.rules[i]);
}

RuleEvalStats EvalStats::Total() const {
  RuleEvalStats total;
  for (const RuleEvalStats& r : rules) total.Merge(r);
  return total;
}

std::string EvalStats::Summary(const AnalyzedQuery& query) const {
  std::string out;
  char line[512];
  for (size_t i = 0; i < rules.size(); ++i) {
    const RuleEvalStats& s = rules[i];
    if (s.evaluations == 0) continue;
    const char* text = i < query.rules().size()
                           ? query.rules()[i].source_text.c_str()
                           : "";
    std::snprintf(line, sizeof(line),
                  "  [r%zu] evals=%llu scanned=%llu probes=%llu "
                  "probe-rows=%llu builds=%llu rescans=%llu derived=%llu "
                  "%.3fs  %s\n",
                  i, static_cast<unsigned long long>(s.evaluations),
                  static_cast<unsigned long long>(s.rows_scanned),
                  static_cast<unsigned long long>(s.index_probes),
                  static_cast<unsigned long long>(s.probe_rows),
                  static_cast<unsigned long long>(s.index_builds),
                  static_cast<unsigned long long>(s.delta_rescans),
                  static_cast<unsigned long long>(s.derived), s.seconds,
                  text);
    out += line;
  }
  return out;
}

namespace {

/// Mutable variable bindings during one rule walk.
struct Env {
  std::vector<Value> vals;
  std::vector<uint8_t> bound;

  explicit Env(size_t n) : vals(n), bound(n, 0) {}
};

/// Evaluates pool term `idx`; nullopt when arithmetic fails (div by zero,
/// type error) — the current valuation is then skipped, not a hard error.
std::optional<Value> EvalTerm(const CompiledRule& rule, int idx,
                              const Env& env) {
  const CTerm& t = rule.term_pool[static_cast<size_t>(idx)];
  switch (t.kind) {
    case CTerm::Kind::kConst:
      return t.constant;
    case CTerm::Kind::kVar:
      ARIADNE_CHECK(env.bound[static_cast<size_t>(t.var)]);
      return env.vals[static_cast<size_t>(t.var)];
    case CTerm::Kind::kArith: {
      auto l = EvalTerm(rule, t.lhs, env);
      auto r = EvalTerm(rule, t.rhs, env);
      if (!l || !r) return std::nullopt;
      Result<Value> out = Status::Internal("bad op");
      switch (t.op) {
        case '+':
          out = l->Add(*r);
          break;
        case '-':
          out = l->Sub(*r);
          break;
        case '*':
          out = l->Mul(*r);
          break;
        case '/':
          out = l->Div(*r);
          break;
      }
      if (!out.ok()) return std::nullopt;
      return std::move(out).value();
    }
  }
  return std::nullopt;
}

/// Zero-copy view of a term that is a constant or a bound plain variable;
/// nullptr for arithmetic terms or unbound variables.
const Value* FastTerm(const CompiledRule& rule, int idx, const Env& env) {
  const CTerm& t = rule.term_pool[static_cast<size_t>(idx)];
  switch (t.kind) {
    case CTerm::Kind::kConst:
      return &t.constant;
    case CTerm::Kind::kVar:
      return env.bound[static_cast<size_t>(t.var)]
                 ? &env.vals[static_cast<size_t>(t.var)]
                 : nullptr;
    case CTerm::Kind::kArith:
      return nullptr;
  }
  return nullptr;
}

bool TermEvaluable(const CompiledRule& rule, int idx, const Env& env) {
  const CTerm& t = rule.term_pool[static_cast<size_t>(idx)];
  switch (t.kind) {
    case CTerm::Kind::kConst:
      return true;
    case CTerm::Kind::kVar:
      return env.bound[static_cast<size_t>(t.var)] != 0;
    case CTerm::Kind::kArith:
      return TermEvaluable(rule, t.lhs, env) &&
             TermEvaluable(rule, t.rhs, env);
  }
  return false;
}

int PlainVarOf(const CompiledRule& rule, int idx) {
  const CTerm& t = rule.term_pool[static_cast<size_t>(idx)];
  return t.kind == CTerm::Kind::kVar ? t.var : -1;
}

// Uniform column access over the two row representations MatchTuple sees:
// materialized Tuples (static edge enumeration, negated-atom grounding)
// and borrowed Relation::RowView rows (stored relations — the hot path,
// which must not materialize per row).
inline bool RowColEquals(const Tuple& t, size_t i, const Value& v) {
  return t[i] == v;
}
inline bool RowColEquals(const Relation::RowView& t, size_t i,
                         const Value& v) {
  return t.Equals(i, v);
}
inline Value RowColValue(const Tuple& t, size_t i) { return t[i]; }
inline Value RowColValue(const Relation::RowView& t, size_t i) {
  return t.value(i);
}

/// Group accumulator for aggregate rules.
struct AggCell {
  std::unordered_set<Value, ValueHash> distinct;  // COUNT
  double sum = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  int64_t n = 0;
};

struct GroupAccum {
  std::vector<AggCell> cells;  // one per aggregate head position
};

/// One rule evaluation pass: walks the planned body order, deriving head
/// tuples (or aggregate contributions).
///
/// Semi-naive support: when `delta_literal >= 0`, that body atom only
/// ranges over rows at indices >= `delta_from` (the tuples inserted since
/// the previous evaluation of this rule); the fixpoint driver calls the
/// walk once per positive atom with the respective deltas, which bounds
/// the per-superstep work of online evaluation by the *new* facts instead
/// of the whole retained history.
class RuleRun {
 public:
  RuleRun(const CompiledRule& rule, EvalContext& ctx,
          RuleEvalStats& stats, int delta_literal, size_t delta_from,
          PersistentAggState* persistent_agg = nullptr)
      : rule_(rule),
        ctx_(ctx),
        stats_(stats),
        env_(rule.vars.size()),
        delta_literal_(delta_literal),
        delta_from_(delta_from),
        persistent_agg_(persistent_agg) {
    // Semi-naive: walk the delta atom FIRST so per-round work scales with
    // the new tuples, not the accumulated relation. Promoting a positive
    // atom can only add bindings earlier, so the plan stays safe; the
    // runtime handles flipped binding directions of `=` comparisons.
    order_.assign(rule.eval_order.begin(), rule.eval_order.end());
    existential_.assign(rule.existential.begin(), rule.existential.end());
    if (delta_literal_ >= 0) {
      for (size_t k = 0; k < order_.size(); ++k) {
        if (static_cast<int>(order_[k]) == delta_literal_) {
          const size_t body_idx = order_[k];
          const uint8_t flag = k < existential_.size() ? existential_[k] : 0;
          order_.erase(order_.begin() + static_cast<ptrdiff_t>(k));
          if (k < existential_.size()) {
            existential_.erase(existential_.begin() +
                               static_cast<ptrdiff_t>(k));
          }
          order_.insert(order_.begin(), body_idx);
          (void)flag;
          // Flags of the *other* atoms stay valid after promotion (their
          // newly-bound sets can only shrink, and a subset of an all-dead
          // set is all-dead), but the promoted atom itself now binds more
          // variables than the static analysis assumed: it must iterate
          // every delta row.
          existential_.insert(existential_.begin(), 0);
          break;
        }
      }
    }
  }

  Result<bool> Run() {
    // Distributed semantics: per-vertex mode pre-binds the head location.
    if (ctx_.local_vertex.has_value()) {
      Bind(rule_.head_loc_var,
           Value(static_cast<int64_t>(*ctx_.local_vertex)));
    }
    ARIADNE_RETURN_NOT_OK(Step(0));
    if (rule_.has_aggregate) {
      SeedDefaultGroup();
      return FlushAggregates();
    }
    return derived_;
  }

  /// Incremental aggregate path: walk only the driver's delta, fold each
  /// valuation into the persistent group state (every row of a deduped
  /// single-atom body is a distinct valuation), then rebuild the head.
  Result<bool> RunIncrementalAggregate() {
    ARIADNE_CHECK(persistent_agg_ != nullptr);
    if (ctx_.local_vertex.has_value()) {
      Bind(rule_.head_loc_var,
           Value(static_cast<int64_t>(*ctx_.local_vertex)));
    }
    ARIADNE_RETURN_NOT_OK(Step(0));
    SeedDefaultPersistentGroup();
    return FlushPersistentAggregates();
  }

 private:
  void Bind(int var, Value v) {
    env_.vals[static_cast<size_t>(var)] = std::move(v);
    env_.bound[static_cast<size_t>(var)] = 1;
  }
  void Unbind(int var) { env_.bound[static_cast<size_t>(var)] = 0; }

  Status Step(size_t k) {
    if (k == order_.size()) return Derive();
    const size_t body_idx = order_[k];
    const CLiteral& lit = rule_.body[body_idx];
    switch (lit.kind) {
      case CLiteral::Kind::kComparison:
        return StepComparison(lit, k);
      case CLiteral::Kind::kUdf:
        return StepUdf(lit, k);
      case CLiteral::Kind::kAtom:
        if (lit.negated) return StepNegatedAtom(lit, k);
        return StepAtom(lit, k,
                        static_cast<int>(body_idx) == delta_literal_);
    }
    return Status::Internal("unknown literal kind");
  }

  /// True when plan position `k` may stop at its first unifying tuple.
  bool Existential(size_t k) const {
    return k < existential_.size() && existential_[k] != 0;
  }

  Status StepComparison(const CLiteral& lit, size_t k) {
    const bool lhs_ok = TermEvaluable(rule_, lit.cmp_lhs, env_);
    const bool rhs_ok = TermEvaluable(rule_, lit.cmp_rhs, env_);
    if (lhs_ok && rhs_ok) {
      auto l = EvalTerm(rule_, lit.cmp_lhs, env_);
      auto r = EvalTerm(rule_, lit.cmp_rhs, env_);
      if (!l || !r) return Status::OK();  // failed arithmetic: no match
      auto cmp = l->NumericCompare(*r);
      if (!cmp.ok()) return Status::OK();  // incomparable: no match
      bool pass = false;
      switch (lit.cmp_op) {
        case ComparisonOp::kEq:
          pass = *cmp == 0;
          break;
        case ComparisonOp::kNe:
          pass = *cmp != 0;
          break;
        case ComparisonOp::kLt:
          pass = *cmp < 0;
          break;
        case ComparisonOp::kLe:
          pass = *cmp <= 0;
          break;
        case ComparisonOp::kGt:
          pass = *cmp > 0;
          break;
        case ComparisonOp::kGe:
          pass = *cmp >= 0;
          break;
      }
      return pass ? Step(k + 1) : Status::OK();
    }
    // Binding equality: exactly one side is an unbound plain variable.
    ARIADNE_CHECK(lit.cmp_op == ComparisonOp::kEq);
    const int bind_idx = lhs_ok ? lit.cmp_rhs : lit.cmp_lhs;
    const int eval_idx = lhs_ok ? lit.cmp_lhs : lit.cmp_rhs;
    const int var = PlainVarOf(rule_, bind_idx);
    ARIADNE_CHECK(var >= 0);
    auto v = EvalTerm(rule_, eval_idx, env_);
    if (!v) return Status::OK();
    Bind(var, std::move(*v));
    Status s = Step(k + 1);
    Unbind(var);
    return s;
  }

  Status StepUdf(const CLiteral& lit, size_t k) {
    const size_t n_in = lit.udf->kind == UdfKind::kFunction
                            ? lit.udf_args.size() - 1
                            : lit.udf_args.size();
    std::array<Value, 8> arg_buf;
    ARIADNE_CHECK(n_in <= arg_buf.size());
    for (size_t i = 0; i < n_in; ++i) {
      auto v = EvalTerm(rule_, lit.udf_args[i], env_);
      if (!v) return Status::OK();
      arg_buf[i] = std::move(*v);
    }
    std::span<const Value> args(arg_buf.data(), n_in);
    if (lit.udf->kind == UdfKind::kPredicate) {
      auto holds = lit.udf->predicate(args);
      if (!holds.ok()) return Status::OK();  // type mismatch: no match
      const bool pass = lit.negated ? !*holds : *holds;
      return pass ? Step(k + 1) : Status::OK();
    }
    auto out = lit.udf->function(args);
    if (!out.ok()) return Status::OK();
    const int out_idx = lit.udf_args.back();
    if (TermEvaluable(rule_, out_idx, env_)) {
      auto expected = EvalTerm(rule_, out_idx, env_);
      if (!expected) return Status::OK();
      auto cmp = out->NumericCompare(*expected);
      const bool equal = cmp.ok() ? *cmp == 0 : *out == *expected;
      return equal ? Step(k + 1) : Status::OK();
    }
    const int var = PlainVarOf(rule_, out_idx);
    ARIADNE_CHECK(var >= 0);
    Bind(var, std::move(out).value());
    Status s = Step(k + 1);
    Unbind(var);
    return s;
  }

  /// Attempts to unify `tuple` with the atom's argument terms; on success
  /// recurses into Step(k+1). Newly bound variables are restored after.
  /// `unified` (when non-null) reports whether unification succeeded.
  /// `RowT` is Tuple or Relation::RowView; the row is only dereferenced
  /// before the recursion, so views stay valid even when recursive rules
  /// insert into (and reallocate) the relation the view borrows from.
  template <typename RowT>
  Status MatchTuple(const CLiteral& lit, const RowT& tuple, size_t k,
                    bool* unified = nullptr) {
    std::array<int, 16> trail;
    size_t trail_size = 0;
    bool ok = true;
    for (size_t i = 0; i < lit.args.size() && ok; ++i) {
      const int arg = lit.args[i];
      const CTerm& term = rule_.term_pool[static_cast<size_t>(arg)];
      switch (term.kind) {
        case CTerm::Kind::kConst:
          ok = RowColEquals(tuple, i, term.constant);
          break;
        case CTerm::Kind::kVar:
          if (env_.bound[static_cast<size_t>(term.var)]) {
            ok = RowColEquals(tuple, i,
                              env_.vals[static_cast<size_t>(term.var)]);
          } else {
            env_.vals[static_cast<size_t>(term.var)] = RowColValue(tuple, i);
            env_.bound[static_cast<size_t>(term.var)] = 1;
            ARIADNE_CHECK(trail_size < trail.size());
            trail[trail_size++] = term.var;
          }
          break;
        case CTerm::Kind::kArith: {
          auto v = EvalTerm(rule_, arg, env_);
          ok = v.has_value() && RowColEquals(tuple, i, *v);
          break;
        }
      }
    }
    if (unified != nullptr) *unified = ok;
    Status s = ok ? Step(k + 1) : Status::OK();
    for (size_t i = 0; i < trail_size; ++i) Unbind(trail[i]);
    return s;
  }

  /// Enumerates static graph tuples for kEdge / kEdgeValue atoms.
  Status StepStaticAtom(const CLiteral& lit, size_t k) {
    const Graph& g = *ctx_.graph;
    const EdbKind kind = ctx_.db->query().pred(lit.pred).edb;
    const bool with_value = kind == EdbKind::kEdgeValue;

    const Value* src_v = FastTerm(rule_, lit.args[0], env_);
    const Value* dst_v = FastTerm(rule_, lit.args[1], env_);
    std::optional<Value> src_owned, dst_owned, step_owned;
    if (src_v == nullptr && TermEvaluable(rule_, lit.args[0], env_)) {
      src_owned = EvalTerm(rule_, lit.args[0], env_);
      if (!src_owned) return Status::OK();
      src_v = &*src_owned;
    }
    if (dst_v == nullptr && TermEvaluable(rule_, lit.args[1], env_)) {
      dst_owned = EvalTerm(rule_, lit.args[1], env_);
      if (!dst_owned) return Status::OK();
      dst_v = &*dst_owned;
    }
    const Value* step_v = nullptr;
    if (with_value) {
      if (!TermEvaluable(rule_, lit.args[3], env_)) {
        return Status::Unsupported(
            "edge-value requires its superstep argument to be bound");
      }
      step_owned = EvalTerm(rule_, lit.args[3], env_);
      if (!step_owned) return Status::OK();
      step_v = &*step_owned;
    }

    // One tuple buffer per enumeration: MatchTuple never keeps the row
    // past its return, so refilling in place is safe and allocation-free.
    Tuple edge_tuple;
    edge_tuple.reserve(with_value ? 4 : 2);
    auto emit_out_edges = [&](VertexId src) -> Status {
      if (src < 0 || src >= g.num_vertices()) return Status::OK();
      auto nbrs = g.OutNeighbors(src);
      auto weights = g.OutWeights(src);
      stats_.rows_scanned += nbrs.size();
      for (size_t i = 0; i < nbrs.size(); ++i) {
        edge_tuple.clear();
        edge_tuple.emplace_back(static_cast<int64_t>(src));
        edge_tuple.emplace_back(static_cast<int64_t>(nbrs[i]));
        if (with_value) {
          edge_tuple.emplace_back(weights[i]);
          edge_tuple.push_back(*step_v);
        }
        ARIADNE_RETURN_NOT_OK(MatchTuple(lit, edge_tuple, k));
      }
      return Status::OK();
    };
    auto emit_in_edges = [&](VertexId dst) -> Status {
      if (dst < 0 || dst >= g.num_vertices()) return Status::OK();
      auto nbrs = g.InNeighbors(dst);
      auto weights = g.InWeights(dst);
      stats_.rows_scanned += nbrs.size();
      for (size_t i = 0; i < nbrs.size(); ++i) {
        edge_tuple.clear();
        edge_tuple.emplace_back(static_cast<int64_t>(nbrs[i]));
        edge_tuple.emplace_back(static_cast<int64_t>(dst));
        if (with_value) {
          edge_tuple.emplace_back(weights[i]);
          edge_tuple.push_back(*step_v);
        }
        ARIADNE_RETURN_NOT_OK(MatchTuple(lit, edge_tuple, k));
      }
      return Status::OK();
    };

    if (src_v != nullptr) {
      if (!src_v->is_int()) return Status::OK();
      return emit_out_edges(src_v->AsInt());
    }
    if (dst_v != nullptr) {
      if (!dst_v->is_int()) return Status::OK();
      return emit_in_edges(dst_v->AsInt());
    }
    if (ctx_.local_vertex.has_value()) {
      // Incident edges of the evaluating node (both directions).
      ARIADNE_RETURN_NOT_OK(emit_out_edges(*ctx_.local_vertex));
      return emit_in_edges(*ctx_.local_vertex);
    }
    // Global mode, nothing bound: full edge scan.
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ARIADNE_RETURN_NOT_OK(emit_out_edges(v));
    }
    return Status::OK();
  }

  Status StepAtom(const CLiteral& lit, size_t k, bool is_delta) {
    const EdbKind kind = ctx_.db->query().pred(lit.pred).edb;
    if (IsStaticEdb(kind) && ctx_.graph != nullptr) {
      return StepStaticAtom(lit, k);
    }
    const Relation* rel_probe = ctx_.db->RelIfExists(lit.pred);
    if (rel_probe == nullptr || rel_probe->empty()) return Status::OK();
    Relation& rel = ctx_.db->Rel(lit.pred);
    const size_t min_row = is_delta ? delta_from_ : 0;
    if (min_row >= rel.size()) return Status::OK();

    int probe_col = -1;
    const Value* probe_val = nullptr;
    std::optional<Value> probe_owned;
    auto eval_col = [&](size_t i, std::optional<Value>& owned) {
      const Value* v = FastTerm(rule_, lit.args[i], env_);
      if (v == nullptr && TermEvaluable(rule_, lit.args[i], env_)) {
        owned = EvalTerm(rule_, lit.args[i], env_);
        v = owned ? &*owned : nullptr;
      }
      return v;
    };
    if (rule_.planned) {
      // Planned probe choice: among all evaluable columns, probe the one
      // whose index bucket is smallest *right now* (ties: lowest column).
      // Bucket cardinality subsumes the old per-vertex column-0 special
      // case — the location column's bucket holds every local row, so a
      // selective column always beats it when one exists.
      size_t best_bucket = std::numeric_limits<size_t>::max();
      for (size_t i = 0; i < lit.args.size(); ++i) {
        std::optional<Value> owned;
        const Value* v = eval_col(i, owned);
        if (v == nullptr) continue;
        if (!rel.HasIndex(static_cast<int>(i))) ++stats_.index_builds;
        ++stats_.index_probes;
        const size_t bucket = rel.Probe(static_cast<int>(i), *v).size();
        if (bucket < best_bucket) {
          best_bucket = bucket;
          probe_col = static_cast<int>(i);
          probe_owned = std::move(owned);
          probe_val = probe_owned ? &*probe_owned : v;
          if (best_bucket == 0) break;  // nothing can beat an empty bucket
        }
      }
    } else {
      // Legacy probe choice: first evaluable column wins. In per-vertex
      // mode column 0 is the location and matches every local row, so a
      // later bound column is always more selective; fall back to column
      // 0 only when nothing else is bound (and in global mode, where the
      // location is selective, try it first).
      const size_t first_col = ctx_.local_vertex.has_value() ? 1 : 0;
      auto try_col = [&](size_t i) {
        probe_val = eval_col(i, probe_owned);
        if (probe_val != nullptr) probe_col = static_cast<int>(i);
        return probe_val != nullptr;
      };
      for (size_t i = first_col; i < lit.args.size() && probe_col < 0; ++i) {
        try_col(i);
      }
      if (probe_col < 0 && first_col == 1) try_col(0);
      if (probe_col >= 0) {
        if (!rel.HasIndex(probe_col)) ++stats_.index_builds;
        ++stats_.index_probes;
      }
    }
    const bool existential = Existential(k);
    bool unified = false;
    if (probe_col >= 0) {
      const std::vector<uint32_t>& bucket = rel.Probe(probe_col, *probe_val);
      stats_.probe_rows += bucket.size();
      std::span<const uint32_t> candidates(bucket);
      std::vector<uint32_t> snapshot;
      if (lit.pred == rule_.head_pred) {
        // Recursive rule: MatchTuple recursion inserts into this very
        // relation, which can grow/rehash the bucket mid-iteration —
        // walk a snapshot copy instead. (The copy must be local: with
        // non-linear recursion two plan positions probe the head
        // relation at once. Rows inserted during the walk are picked up
        // by the enclosing fixpoint round.)
        snapshot.assign(bucket.begin(), bucket.end());
        candidates = snapshot;
      }
      for (uint32_t idx : candidates) {
        if (idx < min_row) continue;
        ARIADNE_RETURN_NOT_OK(
            MatchTuple(lit, rel.row_view(idx), k, &unified));
        if (existential && unified) break;
      }
      return Status::OK();
    }
    const size_t n = rel.size();  // snapshot: ignore tuples added mid-scan
    stats_.rows_scanned += n - min_row;
    for (size_t i = min_row; i < n; ++i) {
      ARIADNE_RETURN_NOT_OK(MatchTuple(lit, rel.row_view(i), k, &unified));
      if (existential && unified) break;
    }
    return Status::OK();
  }

  Status StepNegatedAtom(const CLiteral& lit, size_t k) {
    // All arguments are bound (plan guarantee); build the ground tuple.
    Tuple t;
    t.reserve(lit.args.size());
    for (int arg : lit.args) {
      auto v = EvalTerm(rule_, arg, env_);
      if (!v) return Status::OK();
      t.push_back(std::move(*v));
    }
    const EdbKind kind = ctx_.db->query().pred(lit.pred).edb;
    bool exists = false;
    if (IsStaticEdb(kind) && ctx_.graph != nullptr) {
      if (t[0].is_int() && t[1].is_int()) {
        const VertexId src = t[0].AsInt(), dst = t[1].AsInt();
        if (src >= 0 && src < ctx_.graph->num_vertices() && dst >= 0 &&
            dst < ctx_.graph->num_vertices()) {
          if (kind == EdbKind::kEdge) {
            exists = ctx_.graph->HasEdge(src, dst);
          } else {
            auto nbrs = ctx_.graph->OutNeighbors(src);
            auto weights = ctx_.graph->OutWeights(src);
            for (size_t i = 0; i < nbrs.size(); ++i) {
              if (nbrs[i] == dst && Value(weights[i]) == t[2]) {
                exists = true;
                break;
              }
            }
          }
        }
      }
    } else {
      const Relation* rel = ctx_.db->RelIfExists(lit.pred);
      exists = rel != nullptr && rel->Contains(t);
    }
    return exists ? Status::OK() : Step(k + 1);
  }

  Status Derive() {
    if (rule_.has_aggregate && persistent_agg_ != nullptr) {
      // Incremental path: no valuation dedup needed (each driver row is a
      // distinct tuple of the single body atom).
      Tuple group_key;
      for (const CHeadTerm& h : rule_.head) {
        if (h.is_aggregate) continue;
        auto v = EvalTerm(rule_, h.term, env_);
        if (!v) return Status::OK();
        group_key.push_back(std::move(*v));
      }
      auto& cells = persistent_agg_->groups[group_key];
      size_t cell = 0;
      for (const CHeadTerm& h : rule_.head) {
        if (!h.is_aggregate) continue;
        if (cells.size() <= cell) cells.emplace_back();
        PersistentAggCell& c = cells[cell++];
        auto v = EvalTerm(rule_, h.aggregate_arg, env_);
        if (!v) return Status::OK();
        if (h.aggregate == AggregateFn::kCount) {
          c.distinct.insert(*v);
        } else {
          auto d = v->ToDouble();
          if (!d.ok()) return Status::OK();
          c.sum += *d;
          c.min = std::min(c.min, *d);
          c.max = std::max(c.max, *d);
          ++c.n;
        }
      }
      return Status::OK();
    }
    if (rule_.has_aggregate) {
      // Record this valuation once (set semantics over full valuations).
      Tuple signature;
      signature.reserve(env_.vals.size());
      for (size_t i = 0; i < env_.vals.size(); ++i) {
        signature.push_back(env_.bound[i] ? env_.vals[i] : Value());
      }
      if (!seen_valuations_.insert(signature).second) return Status::OK();

      Tuple group_key;
      for (const CHeadTerm& h : rule_.head) {
        if (h.is_aggregate) continue;
        auto v = EvalTerm(rule_, h.term, env_);
        if (!v) return Status::OK();
        group_key.push_back(std::move(*v));
      }
      GroupAccum& accum = groups_[group_key];
      size_t cell = 0;
      for (const CHeadTerm& h : rule_.head) {
        if (!h.is_aggregate) continue;
        if (accum.cells.size() <= cell) accum.cells.emplace_back();
        AggCell& c = accum.cells[cell++];
        auto v = EvalTerm(rule_, h.aggregate_arg, env_);
        if (!v) return Status::OK();
        if (h.aggregate == AggregateFn::kCount) {
          c.distinct.insert(*v);
        } else {
          auto d = v->ToDouble();
          if (!d.ok()) return Status::OK();
          c.sum += *d;
          c.min = std::min(c.min, *d);
          c.max = std::max(c.max, *d);
          ++c.n;
        }
      }
      return Status::OK();
    }

    scratch_.clear();
    for (const CHeadTerm& h : rule_.head) {
      auto v = EvalTerm(rule_, h.term, env_);
      if (!v) return Status::OK();
      scratch_.push_back(std::move(*v));
    }
    if (ctx_.db->Rel(rule_.head_pred).Insert(scratch_)) {
      derived_ = true;
      ++stats_.derived;
    }
    return Status::OK();
  }

  /// In per-vertex mode, a group whose key only depends on the location
  /// must exist even when the body matched nothing: COUNT/SUM over an
  /// empty partition is 0 (this is what makes the paper's Query 4 see
  /// in-degree(x, 0) for orphan vertices).
  void SeedDefaultGroup() {
    if (!ctx_.local_vertex.has_value()) return;
    Tuple group_key;
    for (const CHeadTerm& h : rule_.head) {
      if (h.is_aggregate) continue;
      if (!TermEvaluable(rule_, h.term, env_)) return;  // needs body vars
      auto v = EvalTerm(rule_, h.term, env_);
      if (!v) return;
      group_key.push_back(std::move(*v));
    }
    GroupAccum& accum = groups_[group_key];  // default-constructs if absent
    size_t n_aggs = 0;
    for (const CHeadTerm& h : rule_.head) {
      if (h.is_aggregate) ++n_aggs;
    }
    while (accum.cells.size() < n_aggs) accum.cells.emplace_back();
  }

  void SeedDefaultPersistentGroup() {
    if (!ctx_.local_vertex.has_value()) return;
    Tuple group_key;
    for (const CHeadTerm& h : rule_.head) {
      if (h.is_aggregate) continue;
      if (!TermEvaluable(rule_, h.term, env_)) return;
      auto v = EvalTerm(rule_, h.term, env_);
      if (!v) return;
      group_key.push_back(std::move(*v));
    }
    auto& cells = persistent_agg_->groups[group_key];
    size_t n_aggs = 0;
    for (const CHeadTerm& h : rule_.head) {
      if (h.is_aggregate) ++n_aggs;
    }
    while (cells.size() < n_aggs) cells.emplace_back();
  }

  Result<bool> FlushPersistentAggregates() {
    std::vector<Tuple> tuples;
    tuples.reserve(persistent_agg_->groups.size());
    for (const auto& [group_key, cells] : persistent_agg_->groups) {
      bool skip = false;
      size_t probe_cell = 0;
      for (const CHeadTerm& h : rule_.head) {
        if (!h.is_aggregate) continue;
        const PersistentAggCell& c = cells[probe_cell++];
        if ((h.aggregate == AggregateFn::kMin ||
             h.aggregate == AggregateFn::kMax) &&
            c.n == 0) {
          skip = true;
        }
      }
      if (skip) continue;
      Tuple t;
      t.reserve(rule_.head.size());
      size_t group_col = 0, cell = 0;
      for (const CHeadTerm& h : rule_.head) {
        if (!h.is_aggregate) {
          t.push_back(group_key[group_col++]);
          continue;
        }
        const PersistentAggCell& c = cells[cell++];
        switch (h.aggregate) {
          case AggregateFn::kCount:
            t.emplace_back(static_cast<int64_t>(c.distinct.size()));
            break;
          case AggregateFn::kSum:
            t.emplace_back(c.sum);
            break;
          case AggregateFn::kMin:
            t.emplace_back(c.min);
            break;
          case AggregateFn::kMax:
            t.emplace_back(c.max);
            break;
          case AggregateFn::kAvg:
            t.emplace_back(c.n == 0 ? 0.0
                                    : c.sum / static_cast<double>(c.n));
            break;
        }
      }
      tuples.push_back(std::move(t));
    }
    return ctx_.db->Rel(rule_.head_pred).ReplaceAll(std::move(tuples));
  }

  Result<bool> FlushAggregates() {
    std::vector<Tuple> tuples;
    tuples.reserve(groups_.size());
    for (const auto& [group_key, accum] : groups_) {
      // Empty MIN/MAX groups have no defined value; skip the group.
      bool skip = false;
      size_t probe_cell = 0;
      for (const CHeadTerm& h : rule_.head) {
        if (!h.is_aggregate) continue;
        const AggCell& c = accum.cells[probe_cell++];
        if ((h.aggregate == AggregateFn::kMin ||
             h.aggregate == AggregateFn::kMax) &&
            c.n == 0) {
          skip = true;
        }
      }
      if (skip) continue;
      Tuple t;
      t.reserve(rule_.head.size());
      size_t group_col = 0, cell = 0;
      for (const CHeadTerm& h : rule_.head) {
        if (!h.is_aggregate) {
          t.push_back(group_key[group_col++]);
          continue;
        }
        const AggCell& c = accum.cells[cell++];
        switch (h.aggregate) {
          case AggregateFn::kCount:
            t.emplace_back(static_cast<int64_t>(c.distinct.size()));
            break;
          case AggregateFn::kSum:
            t.emplace_back(c.sum);
            break;
          case AggregateFn::kMin:
            t.emplace_back(c.min);
            break;
          case AggregateFn::kMax:
            t.emplace_back(c.max);
            break;
          case AggregateFn::kAvg:
            t.emplace_back(c.n == 0 ? 0.0 : c.sum / static_cast<double>(c.n));
            break;
        }
      }
      tuples.push_back(std::move(t));
    }
    return ctx_.db->Rel(rule_.head_pred).ReplaceAll(std::move(tuples));
  }

  const CompiledRule& rule_;
  EvalContext& ctx_;
  RuleEvalStats& stats_;
  Env env_;
  /// Reused head-tuple buffer (Derive) — keeps the hot derivation path
  /// free of per-tuple vector allocations.
  Tuple scratch_;
  std::vector<size_t> order_;
  std::vector<uint8_t> existential_;
  bool derived_ = false;
  int delta_literal_ = -1;
  size_t delta_from_ = 0;
  PersistentAggState* persistent_agg_ = nullptr;
  std::unordered_set<Tuple, TupleHash> seen_valuations_;
  std::map<Tuple, GroupAccum> groups_;
};

/// True when an aggregate rule can use persistent incremental state: one
/// positive dynamic body atom, no negation (non-monotone inputs), and no
/// recursion through the head.
bool AggregateIsIncremental(const CompiledRule& rule, EvalContext& ctx,
                            int* driver) {
  int positive = -1;
  for (size_t i = 0; i < rule.body.size(); ++i) {
    const CLiteral& lit = rule.body[i];
    if (lit.kind != CLiteral::Kind::kAtom) continue;
    if (lit.negated) return false;
    if (lit.pred == rule.head_pred) return false;
    if (IsStaticEdb(ctx.db->query().pred(lit.pred).edb) &&
        ctx.graph != nullptr) {
      continue;  // static atoms never grow; a full pass handles them
    }
    if (positive >= 0) return false;
    positive = static_cast<int>(i);
  }
  if (positive < 0) return false;
  *driver = positive;
  return true;
}

/// Evaluates one rule semi-naively: one walk per positive non-static body
/// atom, restricted to that atom's delta rows (tuples inserted since the
/// previous evaluation). Aggregate rules and rules with no dynamic atoms
/// run one full walk.
Result<bool> EvalRuleSemiNaiveImpl(
    const CompiledRule& rule, EvalContext& ctx,
    std::vector<AtomWatermark>& atom_watermarks,
    std::unique_ptr<PersistentAggState>* agg_state, RuleEvalStats& stats) {
  if (atom_watermarks.size() != rule.body.size()) {
    atom_watermarks.assign(rule.body.size(), AtomWatermark{});
  }
  // Incremental aggregates: fold only the driver atom's delta into
  // persistent group state (bounded per-superstep work for the paper's
  // degree / sum-error aggregates).
  int agg_driver = -1;
  if (rule.has_aggregate && agg_state != nullptr &&
      AggregateIsIncremental(rule, ctx, &agg_driver)) {
    const CLiteral& lit = rule.body[static_cast<size_t>(agg_driver)];
    const Relation* rel = ctx.db->RelIfExists(lit.pred);
    const size_t size = rel == nullptr ? 0 : rel->size();
    const uint64_t epoch = rel == nullptr ? 0 : rel->epoch();
    AtomWatermark& wm = atom_watermarks[static_cast<size_t>(agg_driver)];
    size_t from = wm.epoch == epoch ? wm.rows : 0;
    if (from > 0 && wm.epoch != epoch) from = 0;
    if (wm.epoch != epoch && *agg_state != nullptr) {
      // Input rows were rearranged/removed: rebuild state from scratch.
      (*agg_state)->groups.clear();
      from = 0;
      if (wm.rows > 0) ++stats.delta_rescans;
    }
    if (*agg_state == nullptr) *agg_state = std::make_unique<PersistentAggState>();
    RuleRun run(rule, ctx, stats, agg_driver, from, agg_state->get());
    ++stats.evaluations;
    auto result = run.RunIncrementalAggregate();
    wm.epoch = epoch;
    wm.rows = size;
    return result;
  }
  std::vector<int> drivers;
  if (!rule.has_aggregate) {
    for (size_t i = 0; i < rule.body.size(); ++i) {
      const CLiteral& lit = rule.body[i];
      if (lit.kind != CLiteral::Kind::kAtom || lit.negated) continue;
      if (IsStaticEdb(ctx.db->query().pred(lit.pred).edb) &&
          ctx.graph != nullptr) {
        continue;  // static relations never grow
      }
      drivers.push_back(static_cast<int>(i));
    }
  }
  bool derived = false;
  if (drivers.empty()) {
    RuleRun run(rule, ctx, stats, /*delta_literal=*/-1, 0);
    ++stats.evaluations;
    ARIADNE_ASSIGN_OR_RETURN(bool d, run.Run());
    derived = d;
  } else {
    // Snapshot sizes first: rows inserted *during* this evaluation get
    // covered by the next fixpoint round. Epoch changes (retention,
    // aggregate replacement) invalidate row indices: rescan from zero.
    std::vector<size_t> current(drivers.size());
    std::vector<uint64_t> epochs(drivers.size(), 0);
    for (size_t j = 0; j < drivers.size(); ++j) {
      const Relation* rel = ctx.db->RelIfExists(
          rule.body[static_cast<size_t>(drivers[j])].pred);
      current[j] = rel == nullptr ? 0 : rel->size();
      epochs[j] = rel == nullptr ? 0 : rel->epoch();
    }
    for (size_t j = 0; j < drivers.size(); ++j) {
      AtomWatermark& wm = atom_watermarks[static_cast<size_t>(drivers[j])];
      const size_t from = wm.epoch == epochs[j] ? wm.rows : 0;
      if (wm.epoch != epochs[j] && wm.rows > 0) ++stats.delta_rescans;
      if (from >= current[j]) continue;  // no new rows for this driver
      RuleRun run(rule, ctx, stats, drivers[j], from);
      ++stats.evaluations;
      ARIADNE_ASSIGN_OR_RETURN(bool d, run.Run());
      derived = derived || d;
    }
    for (size_t j = 0; j < drivers.size(); ++j) {
      AtomWatermark& wm = atom_watermarks[static_cast<size_t>(drivers[j])];
      wm.epoch = epochs[j];
      wm.rows = current[j];
    }
  }
  return derived;
}

Result<bool> EvalRuleSemiNaive(const CompiledRule& rule, EvalContext& ctx,
                               std::vector<AtomWatermark>& atom_watermarks,
                               std::unique_ptr<PersistentAggState>* agg_state,
                               RuleEvalStats& stats) {
  WallTimer timer;
  auto result =
      EvalRuleSemiNaiveImpl(rule, ctx, atom_watermarks, agg_state, stats);
  stats.seconds += timer.ElapsedSeconds();
  return result;
}

}  // namespace

Result<bool> RuleEvaluator::Evaluate(EvalContext& ctx) const {
  const auto& rules = query_->rules();
  auto& watermarks = ctx.db->rule_watermarks();
  if (watermarks.size() != rules.size()) {
    watermarks.assign(rules.size(), std::numeric_limits<uint64_t>::max());
  }
  auto& atom_watermarks = ctx.db->atom_watermarks();
  if (atom_watermarks.size() != rules.size()) {
    atom_watermarks.resize(rules.size());
  }
  auto& agg_states = ctx.db->agg_states();
  if (agg_states.size() != rules.size()) {
    agg_states.resize(rules.size());
  }
  auto& eval_stats = ctx.db->eval_stats();
  if (eval_stats.rules.size() != rules.size()) {
    eval_stats.rules.resize(rules.size());
  }
  bool any_new = false;
  size_t start = 0;
  while (start < rules.size()) {
    if (rules[start].stratum > ctx.max_stratum) break;
    // Rules are sorted by stratum; find this stratum's extent.
    size_t end = start;
    while (end < rules.size() &&
           rules[end].stratum == rules[start].stratum) {
      ++end;
    }
    for (;;) {
      bool changed = false;
      for (size_t i = start; i < end; ++i) {
        const uint64_t version = ctx.db->VersionSum(rules[i].body_preds);
        if (watermarks[i] == version) continue;
        watermarks[i] = version;
        ARIADNE_ASSIGN_OR_RETURN(
            bool derived,
            EvalRuleSemiNaive(rules[i], ctx, atom_watermarks[i],
                              &agg_states[i], eval_stats.rules[i]));
        if (derived) {
          changed = true;
          any_new = true;
        }
      }
      if (!changed) break;
    }
    start = end;
  }
  return any_new;
}

void QueryResult::Merge(const AnalyzedQuery& query, const Database& db) {
  for (int pred : query.output_preds()) {
    const Relation* rel = db.RelIfExists(pred);
    if (rel == nullptr || rel->empty()) continue;
    const std::string& name = query.pred(pred).name;
    Relation* merged = nullptr;
    for (auto& [n, r] : tables_) {
      if (n == name) {
        merged = r.get();
        break;
      }
    }
    if (merged == nullptr) {
      tables_.emplace_back(name, std::make_unique<Relation>(rel->arity()));
      merged = tables_.back().second.get();
    }
    for (size_t i = 0; i < rel->size(); ++i) merged->Insert(rel->TupleAt(i));
  }
}

const Relation* QueryResult::Table(const std::string& name) const {
  for (const auto& [n, r] : tables_) {
    if (n == name) return r.get();
  }
  return nullptr;
}

std::vector<std::string> QueryResult::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [n, r] : tables_) names.push_back(n);
  std::sort(names.begin(), names.end());
  return names;
}

size_t QueryResult::TotalTuples() const {
  size_t n = 0;
  for (const auto& [name, r] : tables_) n += r->size();
  return n;
}

size_t QueryResult::TotalBytes() const {
  size_t n = 0;
  for (const auto& [name, r] : tables_) n += r->byte_size();
  return n;
}

size_t QueryResult::TupleCount(const std::string& name) const {
  const Relation* rel = Table(name);
  return rel == nullptr ? 0 : rel->size();
}

}  // namespace ariadne
