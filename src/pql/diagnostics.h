#ifndef ARIADNE_PQL_DIAGNOSTICS_H_
#define ARIADNE_PQL_DIAGNOSTICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"

namespace ariadne {

/// A half-open source range. `offset`/`length` are byte positions into the
/// original source text (used to apply fixits); `line`/`column` are 1-based
/// and used for rendering. `file` is usually empty and inherited from the
/// DiagnosticSink's file name when the diagnostic is emitted.
struct Span {
  std::string file;
  int line = 0;    ///< 1-based; 0 means "no source location"
  int column = 0;  ///< 1-based
  int length = 1;  ///< characters covered (caret + tildes)
  size_t offset = 0;

  bool valid() const { return line > 0; }
};

enum class Severity { kNote, kWarning, kError };

const char* SeverityToString(Severity s);

/// A mechanical replacement suggestion attached to a diagnostic:
/// replace `span` (offset/length) with `replacement`. Applied by
/// ApplyFixits (lint/fix.h) under `ariadne_lint --fix`.
struct FixIt {
  Span span;
  std::string replacement;
};

/// One reported problem: a stable code ("PQL1001"), a severity, a message
/// and the source span it anchors to. Notes attach secondary locations.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string code;
  std::string message;
  Span span;
  std::vector<FixIt> fixits;
  std::vector<Diagnostic> notes;
};

/// Diagnostic code registry: short description used as the SARIF rule
/// shortDescription and by `ariadne_lint --explain`. Returns nullptr for
/// unknown codes.
///
/// Code bands:
///   PQL1xxx  lexical / syntax errors
///   PQL2xxx  semantic (analysis) errors
///   PQL3xxx  lint warnings
const char* DiagCodeDescription(const std::string& code);

/// All registered diagnostic codes, in band order.
const std::vector<std::string>& AllDiagCodes();

/// Accumulates diagnostics for one source buffer. Replaces the
/// first-error Result<> bail-out in the PQL front end: the lexer, parser,
/// analyzer and lint passes all emit here, so one run reports every
/// problem in a program, each with a caret-rendered source excerpt.
class DiagnosticSink {
 public:
  DiagnosticSink() = default;
  DiagnosticSink(std::string file, std::string source)
      : file_(std::move(file)), source_(std::move(source)) {}

  void SetSource(std::string file, std::string source) {
    file_ = std::move(file);
    source_ = std::move(source);
  }

  Diagnostic& Add(Severity severity, std::string code, Span span,
                  std::string message);
  Diagnostic& Error(std::string code, Span span, std::string message) {
    return Add(Severity::kError, std::move(code), std::move(span),
               std::move(message));
  }
  Diagnostic& Warning(std::string code, Span span, std::string message) {
    return Add(Severity::kWarning, std::move(code), std::move(span),
               std::move(message));
  }
  Diagnostic& Note(std::string code, Span span, std::string message) {
    return Add(Severity::kNote, std::move(code), std::move(span),
               std::move(message));
  }

  bool has_errors() const { return error_count_ > 0; }
  size_t error_count() const { return error_count_; }
  size_t warning_count() const { return warning_count_; }

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  std::vector<Diagnostic>& mutable_diagnostics() { return diagnostics_; }
  const std::string& file() const { return file_; }
  const std::string& source() const { return source_; }

  /// Stable-sorts diagnostics by source position (unknown spans last).
  void SortBySpan();

  /// Clang-style text rendering of every diagnostic:
  ///   file:line:col: error: message [PQL1004]
  ///       offending source line
  ///       ^~~~~~
  std::string RenderText() const;

  /// Renders a single diagnostic (used by RenderText and the tools).
  std::string RenderOne(const Diagnostic& d) const;

  /// First error as a Status (ParseError for PQL1xxx, AnalysisError
  /// otherwise), formatted "line L:C: message [code]" to stay compatible
  /// with the legacy single-error API. OK when no errors were recorded.
  Status FirstErrorStatus() const;

 private:
  std::string file_;
  std::string source_;
  std::vector<Diagnostic> diagnostics_;
  size_t error_count_ = 0;
  size_t warning_count_ = 0;
};

}  // namespace ariadne

#endif  // ARIADNE_PQL_DIAGNOSTICS_H_
