#ifndef ARIADNE_PQL_EVALUATOR_H_
#define ARIADNE_PQL_EVALUATOR_H_

#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "pql/analysis.h"
#include "pql/relation.h"

namespace ariadne {

/// Per-(rule, body-literal) delta watermark for semi-naive evaluation:
/// rows of the literal's relation below `rows` (within `epoch`) were
/// already joined by earlier evaluations.
struct AtomWatermark {
  uint64_t epoch = 0;
  size_t rows = 0;
};

/// Persistent per-group accumulator for incrementally-evaluated aggregate
/// rules (single positive body atom: each new input row is a distinct
/// valuation, so group state can accumulate across evaluations instead of
/// rescanning the input).
struct PersistentAggCell {
  std::unordered_set<Value, ValueHash> distinct;  // COUNT
  double sum = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  int64_t n = 0;
};

struct PersistentAggState {
  std::map<Tuple, std::vector<PersistentAggCell>> groups;
};

/// Evaluation counters of one rule (profiling; printed by ariadne_run and
/// reported by bench_eval_micro). Counters accumulate across evaluations
/// of one Database; per-vertex databases are merged at collection time.
struct RuleEvalStats {
  uint64_t evaluations = 0;    ///< rule walks (one per driver delta)
  uint64_t rows_scanned = 0;   ///< rows unified without an index probe
  uint64_t index_probes = 0;   ///< column-index bucket lookups
  uint64_t probe_rows = 0;     ///< candidate rows returned by chosen buckets
  uint64_t index_builds = 0;   ///< lazy column-index constructions
  uint64_t delta_rescans = 0;  ///< epoch mismatches that reset a watermark
  uint64_t derived = 0;        ///< head tuples actually inserted
  double seconds = 0;          ///< wall time inside this rule's evaluation

  void Merge(const RuleEvalStats& o);
};

/// Per-rule evaluation profile of a query run, indexed like
/// AnalyzedQuery::rules().
struct EvalStats {
  std::vector<RuleEvalStats> rules;

  void Merge(const EvalStats& o);
  RuleEvalStats Total() const;
  /// One line per rule (counters + rule text), for ariadne_run.
  std::string Summary(const AnalyzedQuery& query) const;
};

/// The relations of one location (per-vertex mode) or of the whole system
/// (naive mode). Relations are created lazily; evaluation watermarks are
/// kept here so the same RuleEvaluator can serve many Databases.
class Database {
 public:
  explicit Database(const AnalyzedQuery* query) : query_(query) {}

  Relation& Rel(int pred);
  const Relation* RelIfExists(int pred) const;
  Relation* MutableRelIfExists(int pred) {
    return const_cast<Relation*>(
        static_cast<const Database*>(this)->RelIfExists(pred));
  }

  size_t TotalBytes() const;
  size_t TotalTuples() const;

  /// Sum of versions of the given predicates' relations.
  uint64_t VersionSum(const std::vector<int>& preds) const;

  const AnalyzedQuery& query() const { return *query_; }

  /// Per-rule input watermarks (managed by RuleEvaluator::Evaluate).
  std::vector<uint64_t>& rule_watermarks() { return rule_watermarks_; }
  /// Per-rule, per-body-literal delta watermarks (semi-naive evaluation).
  std::vector<std::vector<AtomWatermark>>& atom_watermarks() {
    return atom_watermarks_;
  }
  /// Per-rule persistent aggregate accumulators (incremental aggregates).
  std::vector<std::unique_ptr<PersistentAggState>>& agg_states() {
    return agg_states_;
  }

  /// Per-rule evaluation counters of this database (single-writer: each
  /// vertex database is evaluated by one thread per superstep).
  EvalStats& eval_stats() { return eval_stats_; }
  const EvalStats& eval_stats() const { return eval_stats_; }

 private:
  const AnalyzedQuery* query_;
  std::vector<std::unique_ptr<Relation>> rels_;
  std::vector<uint64_t> rule_watermarks_;
  std::vector<std::vector<AtomWatermark>> atom_watermarks_;
  std::vector<std::unique_ptr<PersistentAggState>> agg_states_;
  EvalStats eval_stats_;
};

/// Where and how a Database is being evaluated.
struct EvalContext {
  Database* db = nullptr;
  /// Input graph for static edge/edge-value enumeration (all modes).
  const Graph* graph = nullptr;
  /// Per-vertex mode: the evaluating provenance node. Binds each rule's
  /// head location variable before the body runs (distributed semantics,
  /// paper §4.3) and scopes static edge enumeration to incident edges.
  std::optional<VertexId> local_vertex;
  /// Evaluate only rules in strata <= max_stratum (naive evaluation
  /// synchronizes strata globally so negation sees complete lower strata).
  int max_stratum = std::numeric_limits<int>::max();
};

/// Bottom-up, stratified, fixpoint evaluation of an AnalyzedQuery over a
/// Database. Incremental across calls: a rule re-evaluates only when one
/// of its input relations changed since the previous call (insertion
/// watermarks), so per-superstep online evaluation does not redo old work.
class RuleEvaluator {
 public:
  explicit RuleEvaluator(const AnalyzedQuery* query) : query_(query) {}

  /// Runs all strata to fixpoint. Returns true if any new tuple was
  /// derived (including aggregate relation changes).
  Result<bool> Evaluate(EvalContext& ctx) const;

 private:
  const AnalyzedQuery* query_;
};

/// Merged output tables of a query run (union over locations for the
/// per-vertex modes, the global database for naive mode).
class QueryResult {
 public:
  /// Adds the IDB tuples of `db` into the merged tables.
  void Merge(const AnalyzedQuery& query, const Database& db);

  const Relation* Table(const std::string& name) const;
  std::vector<std::string> TableNames() const;
  size_t TotalTuples() const;
  size_t TotalBytes() const;

  /// Number of tuples in `name` (0 if absent) — bench convenience.
  size_t TupleCount(const std::string& name) const;

 private:
  std::vector<std::pair<std::string, std::unique_ptr<Relation>>> tables_;
};

}  // namespace ariadne

#endif  // ARIADNE_PQL_EVALUATOR_H_
