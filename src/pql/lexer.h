#ifndef ARIADNE_PQL_LEXER_H_
#define ARIADNE_PQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "pql/diagnostics.h"

namespace ariadne {

/// Token kinds of the PQL surface syntax.
enum class TokenKind {
  kIdent,     ///< predicate / variable name; hyphens allowed inside
  kParam,     ///< $name
  kInt,       ///< integer literal
  kDouble,    ///< floating literal
  kString,    ///< "..." literal
  kLParen,
  kRParen,
  kComma,
  kDot,
  kArrow,     ///< <- or :-
  kBang,      ///< ! or the keyword `not`
  kEq,        ///< = or ==
  kNe,        ///< != or <>
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;   ///< identifier / parameter spelling
  Value literal;      ///< kInt / kDouble / kString payload
  int line = 1;
  int column = 1;
  size_t offset = 0;  ///< byte offset of the first character
  int length = 0;     ///< spelled length in bytes
};

/// Source span covering a token (file is stamped in by the sink).
Span TokenSpan(const Token& token);

/// Span from the start of `first` to the end of `last` (inclusive).
Span JoinSpans(const Span& first, const Span& last);

/// Tokenizes PQL text.
///
/// Identifiers may contain hyphens (`receive-message`, `udf-diff`): a `-`
/// continues an identifier when it directly follows an identifier
/// character and is directly followed by a letter. Consequently,
/// subtraction between variables must be spaced (`i - 1`, `i - j`); `i-j`
/// lexes as the single identifier "i-j". Comments run from `%` or `//` to
/// end of line.
Result<std::vector<Token>> Tokenize(const std::string& text);

/// Recovering tokenizer: lexical errors are reported to `sink` (codes
/// PQL1001-PQL1003, PQL1006, PQL1007) and lexing continues past them, so
/// one pass surfaces every lexical problem. The returned stream always
/// ends with a kEof token.
std::vector<Token> Tokenize(const std::string& text, DiagnosticSink& sink);

}  // namespace ariadne

#endif  // ARIADNE_PQL_LEXER_H_
