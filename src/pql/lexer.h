#ifndef ARIADNE_PQL_LEXER_H_
#define ARIADNE_PQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace ariadne {

/// Token kinds of the PQL surface syntax.
enum class TokenKind {
  kIdent,     ///< predicate / variable name; hyphens allowed inside
  kParam,     ///< $name
  kInt,       ///< integer literal
  kDouble,    ///< floating literal
  kString,    ///< "..." literal
  kLParen,
  kRParen,
  kComma,
  kDot,
  kArrow,     ///< <- or :-
  kBang,      ///< ! or the keyword `not`
  kEq,        ///< = or ==
  kNe,        ///< != or <>
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;   ///< identifier / parameter spelling
  Value literal;      ///< kInt / kDouble / kString payload
  int line = 1;
  int column = 1;
};

/// Tokenizes PQL text.
///
/// Identifiers may contain hyphens (`receive-message`, `udf-diff`): a `-`
/// continues an identifier when it directly follows an identifier
/// character and is directly followed by a letter. Consequently,
/// subtraction between variables must be spaced (`i - 1`, `i - j`); `i-j`
/// lexes as the single identifier "i-j". Comments run from `%` or `//` to
/// end of line.
Result<std::vector<Token>> Tokenize(const std::string& text);

}  // namespace ariadne

#endif  // ARIADNE_PQL_LEXER_H_
