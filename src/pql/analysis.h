#ifndef ARIADNE_PQL_ANALYSIS_H_
#define ARIADNE_PQL_ANALYSIS_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "pql/ast.h"
#include "pql/catalog.h"
#include "pql/diagnostics.h"
#include "pql/udf.h"

namespace ariadne {

/// Direction of a rule / query per the paper's Definition 5.2:
///   * kLocal      — no remote predicates; every evaluation mode works.
///   * kForward    — remote predicates guarded only by receive-message;
///                   online + ascending layered + naive.
///   * kBackward   — guarded only by send-message (or an edge-like guard
///                   with a later-superstep temporal link); descending
///                   layered + naive.
///   * kUndirected — mixed or unguarded (the paper's R1 counter-example);
///                   naive only.
enum class Direction { kLocal, kForward, kBackward, kUndirected };

const char* DirectionToString(Direction d);

/// How a shipped relation's tuples travel between provenance nodes.
enum class ShipRouting {
  kAlongMessages,         ///< to the destinations of this step's sends
  kAlongReverseMessages,  ///< to the senders of this step's receives
  kAlongOutEdges,         ///< to all static out-neighbors
  kAlongInEdges,          ///< to all static in-neighbors
};

/// Schema of a ProvenanceStore, used to resolve custom captured relations
/// (e.g. prov-send) as EDBs of offline queries.
struct StoreSchema {
  struct Entry {
    std::string name;
    int arity = 0;
  };
  std::vector<Entry> relations;

  const Entry* Find(const std::string& name) const {
    for (const auto& e : relations) {
      if (e.name == name) return &e;
    }
    return nullptr;
  }
};

/// Per-predicate metadata assembled by Analyze.
struct PredicateInfo {
  std::string name;
  int arity = -1;
  EdbKind edb = EdbKind::kNone;  ///< kNone for IDBs, kStored for store-backed
  bool is_idb() const { return edb == EdbKind::kNone; }
  bool shipped = false;          ///< appears as a remote body atom somewhere
  ShipRouting routing = ShipRouting::kAlongMessages;  ///< valid when shipped
  bool has_aggregate_rule = false;
  int stratum = 0;
};

/// Compiled term over a per-rule term pool (variables interned to dense
/// ids for fast evaluation).
struct CTerm {
  enum class Kind { kVar, kConst, kArith };
  Kind kind = Kind::kConst;
  int var = -1;        ///< kVar: dense variable id
  Value constant;      ///< kConst
  char op = 0;         ///< kArith
  int lhs = -1, rhs = -1;  ///< kArith: term pool indices
};

/// One resolved, compiled body literal.
struct CLiteral {
  enum class Kind { kAtom, kComparison, kUdf };
  Kind kind = Kind::kAtom;

  // kAtom
  int pred = -1;
  bool negated = false;
  bool remote = false;       ///< location variable differs from head's
  int loc_var = -1;          ///< dense id of the location variable
  std::vector<int> args;     ///< term pool indices

  // kComparison
  ComparisonOp cmp_op = ComparisonOp::kEq;
  int cmp_lhs = -1, cmp_rhs = -1;

  // kUdf
  const Udf* udf = nullptr;
  std::vector<int> udf_args;  ///< term pool indices (output last for functions)

  Span span;  ///< source extent of the originating body literal
};

struct CHeadTerm {
  bool is_aggregate = false;
  int term = -1;  ///< term pool index (plain head term)
  AggregateFn aggregate = AggregateFn::kCount;
  int aggregate_arg = -1;  ///< term pool index of the aggregated variable
};

/// A compiled rule: interned terms, resolved predicates, a safe greedy
/// evaluation order, stratum and direction classification.
struct CompiledRule {
  int head_pred = -1;
  std::vector<CHeadTerm> head;
  int head_loc_var = -1;          ///< dense id of the head location variable
  std::vector<std::string> vars;  ///< dense id -> name
  std::vector<CTerm> term_pool;
  std::vector<CLiteral> body;
  std::vector<size_t> eval_order;  ///< indices into body, safe ordering
  /// Parallel to eval_order: true when a positive atom at that plan
  /// position may stop at its first unifying tuple (every variable it
  /// binds is dead afterwards — existential subgoal / semi-join).
  std::vector<uint8_t> existential;
  std::vector<int> body_preds;     ///< distinct predicate ids read (watermarks)
  int stratum = 0;
  Direction direction = Direction::kLocal;
  bool has_aggregate = false;
  /// Whether eval_order came from the cost-ordered planner; also enables
  /// runtime probe-column selection by index-bucket cardinality. Off with
  /// AnalyzeOptions::plan_joins = false (the --no-plan escape hatch),
  /// which reproduces the legacy greedy order + first-evaluable probe.
  bool planned = false;
  std::string source_text;  ///< pretty-printed original rule (diagnostics)
  Span span;                ///< full source extent of the rule
  Span name_span;           ///< the head predicate name token
};

/// A capture query whose rules are pure projections of built-in EDBs gets
/// compiled to a direct recording plan, bypassing Datalog evaluation —
/// this is what keeps full capture (paper Query 2) within the 2.7-5.6x
/// envelope instead of paying interpreter costs per message.
struct FastCaptureProjection {
  EdbKind source = EdbKind::kNone;  ///< record stream to project from
  int head_pred = -1;
  /// head column -> source column; -1 means "current superstep".
  std::vector<int> columns;
};

struct FastCapturePlan {
  std::vector<FastCaptureProjection> projections;
};

struct AnalyzeOptions {
  /// Accept the transient capture-time EDBs (vertex-value/send/receive).
  /// Offline evaluation rejects them.
  bool allow_transient = true;
  /// Per-relation cap on retained EDB records per vertex during online
  /// evaluation (0 = unlimited). Safe for queries that only look back one
  /// activation (evolution / i-1 patterns); the paper's monitoring and
  /// apt queries qualify with a window of 2.
  int retain_records = 0;
  /// Cost-ordered join planning (sideways information passing) plus
  /// runtime probe-column choice by index-bucket cardinality. Results are
  /// bit-identical either way (set semantics + fixpoint); false restores
  /// the legacy greedy order for A/B comparison (--no-plan).
  bool plan_joins = true;
};

/// A fully analyzed PQL query, ready for any evaluator.
class AnalyzedQuery {
 public:
  const std::vector<PredicateInfo>& preds() const { return preds_; }
  const PredicateInfo& pred(int id) const { return preds_[static_cast<size_t>(id)]; }
  int num_preds() const { return static_cast<int>(preds_.size()); }
  /// Predicate id by name; -1 if absent.
  int PredId(const std::string& name) const;

  const std::vector<CompiledRule>& rules() const { return rules_; }
  int num_strata() const { return num_strata_; }
  Direction direction() const { return direction_; }
  bool vc_compatible() const { return vc_compatible_; }

  /// IDB predicate ids (the query's output tables).
  const std::vector<int>& output_preds() const { return output_preds_; }
  /// Predicates whose tuples must be shipped between provenance nodes.
  const std::vector<int>& shipped_preds() const { return shipped_preds_; }

  /// True if some rule reads the given built-in EDB kind (drives which
  /// record streams the online wrapper materializes).
  bool UsesEdb(EdbKind kind) const;

  const std::optional<FastCapturePlan>& fast_capture() const {
    return fast_capture_;
  }

  int retain_records() const { return options_.retain_records; }

  /// Human-readable analysis summary (strata, directions, ships).
  std::string DebugString() const;

 private:
  /// Populated by the analyzer (analysis.cc) via this internal builder.
  friend class AnalyzedQueryBuilder;

  std::vector<PredicateInfo> preds_;
  std::vector<CompiledRule> rules_;  // sorted by stratum
  int num_strata_ = 1;
  Direction direction_ = Direction::kLocal;
  bool vc_compatible_ = true;
  std::vector<int> output_preds_;
  std::vector<int> shipped_preds_;
  std::optional<FastCapturePlan> fast_capture_;
  AnalyzeOptions options_;
};

/// Performs the full semantic analysis pipeline: predicate resolution
/// (catalog EDBs, UDFs, store-backed relations, IDBs), arity checking,
/// safety / range-restriction with a greedy join-order plan,
/// stratification of negation and aggregation, location analysis with
/// guard detection (paper Definition 4.1), direction classification
/// (Definition 5.2), ship-routing assignment, and fast-capture plan
/// extraction.
///
/// The query must have no unbound $parameters (bind them first).
///
/// When `sink` is non-null the analyzer accumulates every error it can
/// recover from (bad rules are dropped and analysis continues with the
/// rest), each with a stable PQL2xxx code and a source span; the returned
/// Status is then the first error. With a null sink behavior is the
/// legacy first-error bail-out.
Result<AnalyzedQuery> Analyze(const Program& program, const Catalog& catalog,
                              const UdfRegistry& udfs,
                              const StoreSchema* store = nullptr,
                              const AnalyzeOptions& options = {},
                              DiagnosticSink* sink = nullptr);

}  // namespace ariadne

#endif  // ARIADNE_PQL_ANALYSIS_H_
