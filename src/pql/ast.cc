#include "pql/ast.h"

#include <functional>

namespace ariadne {

Term Term::Var(std::string name) {
  Term t;
  t.kind = Kind::kVariable;
  t.name = std::move(name);
  return t;
}

Term Term::Const(Value v) {
  Term t;
  t.kind = Kind::kConstant;
  t.constant = std::move(v);
  return t;
}

Term Term::Param(std::string name) {
  Term t;
  t.kind = Kind::kParameter;
  t.name = std::move(name);
  return t;
}

Term Term::Arith(char op, Term lhs, Term rhs) {
  Term t;
  t.kind = Kind::kArith;
  t.op = op;
  t.lhs = std::make_shared<Term>(std::move(lhs));
  t.rhs = std::make_shared<Term>(std::move(rhs));
  return t;
}

void Term::CollectVars(std::set<std::string>& out) const {
  switch (kind) {
    case Kind::kVariable:
      out.insert(name);
      break;
    case Kind::kArith:
      lhs->CollectVars(out);
      rhs->CollectVars(out);
      break;
    default:
      break;
  }
}

bool Term::HasParameter() const {
  switch (kind) {
    case Kind::kParameter:
      return true;
    case Kind::kArith:
      return lhs->HasParameter() || rhs->HasParameter();
    default:
      return false;
  }
}

std::string Term::ToString() const {
  switch (kind) {
    case Kind::kVariable:
      return name;
    case Kind::kConstant:
      return constant.ToString();
    case Kind::kParameter:
      return "$" + name;
    case Kind::kArith:
      return "(" + lhs->ToString() + " " + op + " " + rhs->ToString() + ")";
  }
  return "?";
}

const char* ComparisonOpToString(ComparisonOp op) {
  switch (op) {
    case ComparisonOp::kEq:
      return "=";
    case ComparisonOp::kNe:
      return "!=";
    case ComparisonOp::kLt:
      return "<";
    case ComparisonOp::kLe:
      return "<=";
    case ComparisonOp::kGt:
      return ">";
    case ComparisonOp::kGe:
      return ">=";
  }
  return "?";
}

std::string AtomLiteral::ToString() const {
  std::string out = negated ? "!" : "";
  out += predicate + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].ToString();
  }
  out += ")";
  return out;
}

std::string ComparisonLiteral::ToString() const {
  return lhs.ToString() + " " + ComparisonOpToString(op) + " " +
         rhs.ToString();
}

BodyLiteral BodyLiteral::MakeAtom(AtomLiteral a) {
  BodyLiteral lit;
  lit.kind = Kind::kAtom;
  lit.atom = std::move(a);
  return lit;
}

BodyLiteral BodyLiteral::MakeComparison(ComparisonLiteral c) {
  BodyLiteral lit;
  lit.kind = Kind::kComparison;
  lit.comparison = std::move(c);
  return lit;
}

std::string BodyLiteral::ToString() const {
  return kind == Kind::kAtom ? atom.ToString() : comparison.ToString();
}

const char* AggregateFnToString(AggregateFn fn) {
  switch (fn) {
    case AggregateFn::kCount:
      return "COUNT";
    case AggregateFn::kSum:
      return "SUM";
    case AggregateFn::kMin:
      return "MIN";
    case AggregateFn::kMax:
      return "MAX";
    case AggregateFn::kAvg:
      return "AVG";
  }
  return "?";
}

std::string HeadTerm::ToString() const {
  if (is_aggregate) {
    return std::string(AggregateFnToString(aggregate)) + "(" +
           aggregate_arg.ToString() + ")";
  }
  return term.ToString();
}

bool Rule::HasAggregate() const {
  for (const auto& h : head) {
    if (h.is_aggregate) return true;
  }
  return false;
}

std::string Rule::ToString() const {
  std::string out = head_predicate + "(";
  for (size_t i = 0; i < head.size(); ++i) {
    if (i > 0) out += ", ";
    out += head[i].ToString();
  }
  out += ") <- ";
  for (size_t i = 0; i < body.size(); ++i) {
    if (i > 0) out += ", ";
    out += body[i].ToString();
  }
  out += ".";
  return out;
}

namespace {

Status BindTerm(Term& term,
                const std::vector<std::pair<std::string, Value>>& params) {
  switch (term.kind) {
    case Term::Kind::kParameter: {
      for (const auto& [name, value] : params) {
        if (name == term.name) {
          term = Term::Const(value);
          return Status::OK();
        }
      }
      return Status::InvalidArgument("unbound query parameter $" + term.name);
    }
    case Term::Kind::kArith: {
      ARIADNE_RETURN_NOT_OK(BindTerm(*term.lhs, params));
      return BindTerm(*term.rhs, params);
    }
    default:
      return Status::OK();
  }
}

void ForEachTerm(Program& program, const std::function<void(Term&)>& fn) {
  for (auto& rule : program.rules) {
    for (auto& h : rule.head) {
      fn(h.term);
      fn(h.aggregate_arg);
    }
    for (auto& lit : rule.body) {
      if (lit.kind == BodyLiteral::Kind::kAtom) {
        for (auto& a : lit.atom.args) fn(a);
      } else {
        fn(lit.comparison.lhs);
        fn(lit.comparison.rhs);
      }
    }
  }
}

void CollectParams(const Term& term, std::set<std::string>& out) {
  switch (term.kind) {
    case Term::Kind::kParameter:
      out.insert(term.name);
      break;
    case Term::Kind::kArith:
      CollectParams(*term.lhs, out);
      CollectParams(*term.rhs, out);
      break;
    default:
      break;
  }
}

}  // namespace

Status Program::BindParameters(
    const std::vector<std::pair<std::string, Value>>& params) {
  Status status;
  ForEachTerm(*this, [&](Term& t) {
    if (!status.ok()) return;
    Status s = BindTerm(t, params);
    // Keep the first error but continue traversal (ForEachTerm is void).
    if (!s.ok()) status = s;
  });
  return status;
}

std::set<std::string> Program::UnboundParameters() const {
  std::set<std::string> out;
  for (const auto& rule : rules) {
    for (const auto& h : rule.head) {
      CollectParams(h.term, out);
      CollectParams(h.aggregate_arg, out);
    }
    for (const auto& lit : rule.body) {
      if (lit.kind == BodyLiteral::Kind::kAtom) {
        for (const auto& a : lit.atom.args) CollectParams(a, out);
      } else {
        CollectParams(lit.comparison.lhs, out);
        CollectParams(lit.comparison.rhs, out);
      }
    }
  }
  return out;
}

std::string Program::ToString() const {
  std::string out;
  for (const auto& rule : rules) {
    out += rule.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace ariadne
