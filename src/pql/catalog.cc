#include "pql/catalog.h"

namespace ariadne {

bool IsStaticEdb(EdbKind kind) {
  return kind == EdbKind::kEdge || kind == EdbKind::kEdgeValue;
}

bool IsTransientEdb(EdbKind kind) {
  return kind == EdbKind::kVertexValueNow || kind == EdbKind::kSendNow ||
         kind == EdbKind::kReceiveNow;
}

std::optional<int> EdbStepColumn(EdbKind kind) {
  switch (kind) {
    case EdbKind::kSuperstep:
      return 1;
    case EdbKind::kValue:
      return 2;
    case EdbKind::kEvolution:
      return 2;  // the later (current) superstep
    case EdbKind::kSendMessage:
    case EdbKind::kReceiveMessage:
      return 3;
    case EdbKind::kEdgeValue:
      return 3;  // pass-through column, weight constant over supersteps
    default:
      return std::nullopt;
  }
}

Catalog::Catalog() {
  entries_ = {
      {"superstep", 2, EdbKind::kSuperstep},
      {"value", 3, EdbKind::kValue},
      {"evolution", 3, EdbKind::kEvolution},
      {"send-message", 4, EdbKind::kSendMessage},
      {"send-msg", 4, EdbKind::kSendMessage},
      {"receive-message", 4, EdbKind::kReceiveMessage},
      {"receive-msg", 4, EdbKind::kReceiveMessage},
      {"edge", 2, EdbKind::kEdge},
      {"edges", 2, EdbKind::kEdge},
      {"edge-value", 4, EdbKind::kEdgeValue},
      {"vertex-value", 2, EdbKind::kVertexValueNow},
      {"send", 3, EdbKind::kSendNow},
      {"receive", 3, EdbKind::kReceiveNow},
  };
}

const EdbSchema* Catalog::Find(const std::string& name) const {
  for (const auto& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

const Catalog& Catalog::Default() {
  static const Catalog* kInstance = new Catalog();
  return *kInstance;
}

}  // namespace ariadne
