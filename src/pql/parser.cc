#include "pql/parser.h"

#include <algorithm>
#include <cctype>

#include "pql/lexer.h"

namespace ariadne {

namespace {

/// Case-insensitive aggregate keyword lookup.
bool LookupAggregate(const std::string& name, AggregateFn* out) {
  std::string upper = name;
  std::transform(upper.begin(), upper.end(), upper.begin(), [](char c) {
    return static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  });
  if (upper == "COUNT") {
    *out = AggregateFn::kCount;
  } else if (upper == "SUM") {
    *out = AggregateFn::kSum;
  } else if (upper == "MIN") {
    *out = AggregateFn::kMin;
  } else if (upper == "MAX") {
    *out = AggregateFn::kMax;
  } else if (upper == "AVG") {
    *out = AggregateFn::kAvg;
  } else {
    return false;
  }
  return true;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> ParseProgram() {
    Program program;
    while (Peek().kind != TokenKind::kEof) {
      ARIADNE_ASSIGN_OR_RETURN(Rule rule, ParseRule());
      program.rules.push_back(std::move(rule));
    }
    if (program.rules.empty()) {
      return Status::ParseError("empty PQL program");
    }
    return program;
  }

  Result<Rule> ParseRule() {
    Rule rule;
    ARIADNE_ASSIGN_OR_RETURN(Token name, Expect(TokenKind::kIdent, "rule head"));
    rule.head_predicate = name.text;
    ARIADNE_RETURN_NOT_OK(ExpectOnly(TokenKind::kLParen, "'(' after head"));
    for (;;) {
      ARIADNE_ASSIGN_OR_RETURN(HeadTerm term, ParseHeadTerm());
      rule.head.push_back(std::move(term));
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    ARIADNE_RETURN_NOT_OK(ExpectOnly(TokenKind::kRParen, "')' after head terms"));
    ARIADNE_RETURN_NOT_OK(ExpectOnly(TokenKind::kArrow, "'<-' after rule head"));
    for (;;) {
      ARIADNE_ASSIGN_OR_RETURN(BodyLiteral lit, ParseLiteral());
      rule.body.push_back(std::move(lit));
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    ARIADNE_RETURN_NOT_OK(ExpectOnly(TokenKind::kDot, "'.' at end of rule"));
    return rule;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  Token Advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  Status Error(const std::string& message) const {
    const Token& t = Peek();
    return Status::ParseError("line " + std::to_string(t.line) + ":" +
                              std::to_string(t.column) + ": " + message);
  }

  Result<Token> Expect(TokenKind kind, const std::string& what) {
    if (Peek().kind != kind) return Error("expected " + what);
    return Advance();
  }
  Status ExpectOnly(TokenKind kind, const std::string& what) {
    if (Peek().kind != kind) return Error("expected " + what);
    Advance();
    return Status::OK();
  }

  Result<HeadTerm> ParseHeadTerm() {
    HeadTerm head;
    AggregateFn fn;
    if (Peek().kind == TokenKind::kIdent &&
        Peek(1).kind == TokenKind::kLParen &&
        LookupAggregate(Peek().text, &fn)) {
      Advance();  // AGGR
      Advance();  // (
      ARIADNE_ASSIGN_OR_RETURN(Token var, Expect(TokenKind::kIdent,
                                                 "variable under aggregate"));
      ARIADNE_RETURN_NOT_OK(ExpectOnly(TokenKind::kRParen,
                                       "')' after aggregate"));
      head.is_aggregate = true;
      head.aggregate = fn;
      head.aggregate_arg = Term::Var(var.text);
      return head;
    }
    ARIADNE_ASSIGN_OR_RETURN(head.term, ParseTerm());
    return head;
  }

  Result<BodyLiteral> ParseLiteral() {
    if (Peek().kind == TokenKind::kBang) {
      Advance();
      ARIADNE_ASSIGN_OR_RETURN(AtomLiteral atom, ParseAtom());
      atom.negated = true;
      return BodyLiteral::MakeAtom(std::move(atom));
    }
    // Atom iff ident followed by '(' and not a comparison/arith context:
    // `f(x) < 3` would need function terms, which PQL does not have in
    // comparison position — function calls are body literals (UDFs).
    if (Peek().kind == TokenKind::kIdent &&
        Peek(1).kind == TokenKind::kLParen) {
      ARIADNE_ASSIGN_OR_RETURN(AtomLiteral atom, ParseAtom());
      return BodyLiteral::MakeAtom(std::move(atom));
    }
    ComparisonLiteral cmp;
    ARIADNE_ASSIGN_OR_RETURN(cmp.lhs, ParseTerm());
    switch (Peek().kind) {
      case TokenKind::kEq:
        cmp.op = ComparisonOp::kEq;
        break;
      case TokenKind::kNe:
        cmp.op = ComparisonOp::kNe;
        break;
      case TokenKind::kLt:
        cmp.op = ComparisonOp::kLt;
        break;
      case TokenKind::kLe:
        cmp.op = ComparisonOp::kLe;
        break;
      case TokenKind::kGt:
        cmp.op = ComparisonOp::kGt;
        break;
      case TokenKind::kGe:
        cmp.op = ComparisonOp::kGe;
        break;
      default:
        return Error("expected comparison operator");
    }
    Advance();
    ARIADNE_ASSIGN_OR_RETURN(cmp.rhs, ParseTerm());
    return BodyLiteral::MakeComparison(std::move(cmp));
  }

  Result<AtomLiteral> ParseAtom() {
    AtomLiteral atom;
    ARIADNE_ASSIGN_OR_RETURN(Token name,
                             Expect(TokenKind::kIdent, "predicate name"));
    atom.predicate = name.text;
    ARIADNE_RETURN_NOT_OK(ExpectOnly(TokenKind::kLParen,
                                     "'(' after predicate name"));
    for (;;) {
      ARIADNE_ASSIGN_OR_RETURN(Term term, ParseTerm());
      atom.args.push_back(std::move(term));
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    ARIADNE_RETURN_NOT_OK(ExpectOnly(TokenKind::kRParen,
                                     "')' after atom arguments"));
    return atom;
  }

  // term := factor (('+'|'-') factor)*
  Result<Term> ParseTerm() {
    ARIADNE_ASSIGN_OR_RETURN(Term lhs, ParseFactor());
    while (Peek().kind == TokenKind::kPlus ||
           Peek().kind == TokenKind::kMinus) {
      const char op = Advance().kind == TokenKind::kPlus ? '+' : '-';
      ARIADNE_ASSIGN_OR_RETURN(Term rhs, ParseFactor());
      lhs = Term::Arith(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  // factor := primary (('*'|'/') primary)*
  Result<Term> ParseFactor() {
    ARIADNE_ASSIGN_OR_RETURN(Term lhs, ParsePrimary());
    while (Peek().kind == TokenKind::kStar ||
           Peek().kind == TokenKind::kSlash) {
      const char op = Advance().kind == TokenKind::kStar ? '*' : '/';
      ARIADNE_ASSIGN_OR_RETURN(Term rhs, ParsePrimary());
      lhs = Term::Arith(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Term> ParsePrimary() {
    switch (Peek().kind) {
      case TokenKind::kIdent:
        return Term::Var(Advance().text);
      case TokenKind::kParam:
        return Term::Param(Advance().text);
      case TokenKind::kInt:
      case TokenKind::kDouble:
      case TokenKind::kString:
        return Term::Const(Advance().literal);
      case TokenKind::kMinus: {
        // Unary minus on a numeric literal.
        Advance();
        if (Peek().kind == TokenKind::kInt) {
          return Term::Const(Value(-Advance().literal.AsInt()));
        }
        if (Peek().kind == TokenKind::kDouble) {
          return Term::Const(Value(-Advance().literal.AsDouble()));
        }
        ARIADNE_ASSIGN_OR_RETURN(Term inner, ParsePrimary());
        return Term::Arith('-', Term::Const(Value(int64_t{0})),
                           std::move(inner));
      }
      case TokenKind::kLParen: {
        Advance();
        ARIADNE_ASSIGN_OR_RETURN(Term inner, ParseTerm());
        ARIADNE_RETURN_NOT_OK(ExpectOnly(TokenKind::kRParen,
                                         "')' closing parenthesized term"));
        return inner;
      }
      default:
        return Error("expected term");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Program> ParseProgram(const std::string& text) {
  ARIADNE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  return Parser(std::move(tokens)).ParseProgram();
}

Result<Rule> ParseRule(const std::string& text) {
  ARIADNE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  return Parser(std::move(tokens)).ParseRule();
}

}  // namespace ariadne
