#include "pql/parser.h"

#include <algorithm>
#include <cctype>

#include "pql/lexer.h"

namespace ariadne {

namespace {

/// Case-insensitive aggregate keyword lookup.
bool LookupAggregate(const std::string& name, AggregateFn* out) {
  std::string upper = name;
  std::transform(upper.begin(), upper.end(), upper.begin(), [](char c) {
    return static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  });
  if (upper == "COUNT") {
    *out = AggregateFn::kCount;
  } else if (upper == "SUM") {
    *out = AggregateFn::kSum;
  } else if (upper == "MIN") {
    *out = AggregateFn::kMin;
  } else if (upper == "MAX") {
    *out = AggregateFn::kMax;
  } else if (upper == "AVG") {
    *out = AggregateFn::kAvg;
  } else {
    return false;
  }
  return true;
}

/// Recursive-descent parser with rule-granularity error recovery: a syntax
/// error inside a rule is reported to the sink, the parser skips to the
/// next '.' and resumes with the following rule, so one pass reports every
/// malformed rule instead of bailing at the first.
class Parser {
 public:
  Parser(std::vector<Token> tokens, DiagnosticSink& sink)
      : tokens_(std::move(tokens)), sink_(sink) {}

  Program ParseProgramRecovering() {
    Program program;
    while (Peek().kind != TokenKind::kEof) {
      const size_t before = pos_;
      auto rule = ParseRule();
      if (rule.ok()) {
        program.rules.push_back(std::move(*rule));
      } else {
        Synchronize(before);
      }
    }
    if (program.rules.empty() && !sink_.has_errors()) {
      sink_.Error("PQL1005", Span{}, "empty PQL program");
    }
    return program;
  }

  Result<Rule> ParseRule() {
    Rule rule;
    ARIADNE_ASSIGN_OR_RETURN(Token name, Expect(TokenKind::kIdent, "rule head"));
    rule.head_predicate = name.text;
    rule.name_span = TokenSpan(name);
    ARIADNE_RETURN_NOT_OK(ExpectOnly(TokenKind::kLParen, "'(' after head"));
    for (;;) {
      ARIADNE_ASSIGN_OR_RETURN(HeadTerm term, ParseHeadTerm());
      rule.head.push_back(std::move(term));
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    ARIADNE_RETURN_NOT_OK(ExpectOnly(TokenKind::kRParen, "')' after head terms"));
    ARIADNE_RETURN_NOT_OK(ExpectOnly(TokenKind::kArrow, "'<-' after rule head"));
    for (;;) {
      ARIADNE_ASSIGN_OR_RETURN(BodyLiteral lit, ParseLiteral());
      rule.body.push_back(std::move(lit));
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    ARIADNE_RETURN_NOT_OK(ExpectOnly(TokenKind::kDot, "'.' at end of rule"));
    rule.span = JoinSpans(rule.name_span, TokenSpan(Prev()));
    return rule;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Prev() const {
    return tokens_[pos_ > 0 ? pos_ - 1 : 0];
  }
  Token Advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  /// Skips past the next '.' (or to EOF) after a failed rule; guarantees
  /// forward progress even when the error consumed nothing.
  void Synchronize(size_t before) {
    if (pos_ == before && Peek().kind != TokenKind::kEof) Advance();
    while (Peek().kind != TokenKind::kEof) {
      if (Advance().kind == TokenKind::kDot) return;
    }
  }

  Status Error(const std::string& message) {
    const Token& t = Peek();
    sink_.Error("PQL1004", TokenSpan(t), message);
    return Status::ParseError("line " + std::to_string(t.line) + ":" +
                              std::to_string(t.column) + ": " + message);
  }

  Result<Token> Expect(TokenKind kind, const std::string& what) {
    if (Peek().kind != kind) return Error("expected " + what);
    return Advance();
  }
  Status ExpectOnly(TokenKind kind, const std::string& what) {
    if (Peek().kind != kind) return Error("expected " + what);
    Advance();
    return Status::OK();
  }

  Result<HeadTerm> ParseHeadTerm() {
    HeadTerm head;
    AggregateFn fn;
    if (Peek().kind == TokenKind::kIdent &&
        Peek(1).kind == TokenKind::kLParen &&
        LookupAggregate(Peek().text, &fn)) {
      const Span start = TokenSpan(Peek());
      Advance();  // AGGR
      Advance();  // (
      ARIADNE_ASSIGN_OR_RETURN(Token var, Expect(TokenKind::kIdent,
                                                 "variable under aggregate"));
      ARIADNE_RETURN_NOT_OK(ExpectOnly(TokenKind::kRParen,
                                       "')' after aggregate"));
      head.is_aggregate = true;
      head.aggregate = fn;
      head.aggregate_arg = Term::Var(var.text);
      head.aggregate_arg.span = TokenSpan(var);
      head.span = JoinSpans(start, TokenSpan(Prev()));
      return head;
    }
    ARIADNE_ASSIGN_OR_RETURN(head.term, ParseTerm());
    head.span = head.term.span;
    return head;
  }

  Result<BodyLiteral> ParseLiteral() {
    if (Peek().kind == TokenKind::kBang) {
      const Span start = TokenSpan(Advance());
      ARIADNE_ASSIGN_OR_RETURN(AtomLiteral atom, ParseAtom());
      atom.negated = true;
      atom.span = JoinSpans(start, atom.span);
      return BodyLiteral::MakeAtom(std::move(atom));
    }
    // Atom iff ident followed by '(' and not a comparison/arith context:
    // `f(x) < 3` would need function terms, which PQL does not have in
    // comparison position — function calls are body literals (UDFs).
    if (Peek().kind == TokenKind::kIdent &&
        Peek(1).kind == TokenKind::kLParen) {
      ARIADNE_ASSIGN_OR_RETURN(AtomLiteral atom, ParseAtom());
      return BodyLiteral::MakeAtom(std::move(atom));
    }
    ComparisonLiteral cmp;
    ARIADNE_ASSIGN_OR_RETURN(cmp.lhs, ParseTerm());
    switch (Peek().kind) {
      case TokenKind::kEq:
        cmp.op = ComparisonOp::kEq;
        break;
      case TokenKind::kNe:
        cmp.op = ComparisonOp::kNe;
        break;
      case TokenKind::kLt:
        cmp.op = ComparisonOp::kLt;
        break;
      case TokenKind::kLe:
        cmp.op = ComparisonOp::kLe;
        break;
      case TokenKind::kGt:
        cmp.op = ComparisonOp::kGt;
        break;
      case TokenKind::kGe:
        cmp.op = ComparisonOp::kGe;
        break;
      default:
        return Error("expected comparison operator");
    }
    Advance();
    ARIADNE_ASSIGN_OR_RETURN(cmp.rhs, ParseTerm());
    cmp.span = JoinSpans(cmp.lhs.span, cmp.rhs.span);
    return BodyLiteral::MakeComparison(std::move(cmp));
  }

  Result<AtomLiteral> ParseAtom() {
    AtomLiteral atom;
    ARIADNE_ASSIGN_OR_RETURN(Token name,
                             Expect(TokenKind::kIdent, "predicate name"));
    atom.predicate = name.text;
    atom.name_span = TokenSpan(name);
    ARIADNE_RETURN_NOT_OK(ExpectOnly(TokenKind::kLParen,
                                     "'(' after predicate name"));
    for (;;) {
      ARIADNE_ASSIGN_OR_RETURN(Term term, ParseTerm());
      atom.args.push_back(std::move(term));
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    ARIADNE_RETURN_NOT_OK(ExpectOnly(TokenKind::kRParen,
                                     "')' after atom arguments"));
    atom.span = JoinSpans(atom.name_span, TokenSpan(Prev()));
    return atom;
  }

  // term := factor (('+'|'-') factor)*
  Result<Term> ParseTerm() {
    ARIADNE_ASSIGN_OR_RETURN(Term lhs, ParseFactor());
    while (Peek().kind == TokenKind::kPlus ||
           Peek().kind == TokenKind::kMinus) {
      const char op = Advance().kind == TokenKind::kPlus ? '+' : '-';
      ARIADNE_ASSIGN_OR_RETURN(Term rhs, ParseFactor());
      const Span span = JoinSpans(lhs.span, rhs.span);
      lhs = Term::Arith(op, std::move(lhs), std::move(rhs));
      lhs.span = span;
    }
    return lhs;
  }

  // factor := primary (('*'|'/') primary)*
  Result<Term> ParseFactor() {
    ARIADNE_ASSIGN_OR_RETURN(Term lhs, ParsePrimary());
    while (Peek().kind == TokenKind::kStar ||
           Peek().kind == TokenKind::kSlash) {
      const char op = Advance().kind == TokenKind::kStar ? '*' : '/';
      ARIADNE_ASSIGN_OR_RETURN(Term rhs, ParsePrimary());
      const Span span = JoinSpans(lhs.span, rhs.span);
      lhs = Term::Arith(op, std::move(lhs), std::move(rhs));
      lhs.span = span;
    }
    return lhs;
  }

  Result<Term> ParsePrimary() {
    switch (Peek().kind) {
      case TokenKind::kIdent: {
        const Token t = Advance();
        Term term = Term::Var(t.text);
        term.span = TokenSpan(t);
        return term;
      }
      case TokenKind::kParam: {
        const Token t = Advance();
        Term term = Term::Param(t.text);
        term.span = TokenSpan(t);
        return term;
      }
      case TokenKind::kInt:
      case TokenKind::kDouble:
      case TokenKind::kString: {
        const Token t = Advance();
        Term term = Term::Const(t.literal);
        term.span = TokenSpan(t);
        return term;
      }
      case TokenKind::kMinus: {
        // Unary minus on a numeric literal.
        const Span start = TokenSpan(Peek());
        Advance();
        if (Peek().kind == TokenKind::kInt) {
          const Token t = Advance();
          Term term = Term::Const(Value(-t.literal.AsInt()));
          term.span = JoinSpans(start, TokenSpan(t));
          return term;
        }
        if (Peek().kind == TokenKind::kDouble) {
          const Token t = Advance();
          Term term = Term::Const(Value(-t.literal.AsDouble()));
          term.span = JoinSpans(start, TokenSpan(t));
          return term;
        }
        ARIADNE_ASSIGN_OR_RETURN(Term inner, ParsePrimary());
        const Span span = JoinSpans(start, inner.span);
        Term term = Term::Arith('-', Term::Const(Value(int64_t{0})),
                                std::move(inner));
        term.span = span;
        return term;
      }
      case TokenKind::kLParen: {
        const Span start = TokenSpan(Peek());
        Advance();
        ARIADNE_ASSIGN_OR_RETURN(Term inner, ParseTerm());
        ARIADNE_RETURN_NOT_OK(ExpectOnly(TokenKind::kRParen,
                                         "')' closing parenthesized term"));
        inner.span = JoinSpans(start, TokenSpan(Prev()));
        return inner;
      }
      default:
        return Error("expected term");
    }
  }

  std::vector<Token> tokens_;
  DiagnosticSink& sink_;
  size_t pos_ = 0;
};

}  // namespace

Program ParseProgram(const std::string& text, DiagnosticSink& sink) {
  std::vector<Token> tokens = Tokenize(text, sink);
  return Parser(std::move(tokens), sink).ParseProgramRecovering();
}

Result<Program> ParseProgram(const std::string& text) {
  DiagnosticSink sink;
  Program program = ParseProgram(text, sink);
  if (sink.has_errors()) return sink.FirstErrorStatus();
  return program;
}

Result<Rule> ParseRule(const std::string& text) {
  DiagnosticSink sink;
  ARIADNE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  return Parser(std::move(tokens), sink).ParseRule();
}

}  // namespace ariadne
