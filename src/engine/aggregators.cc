#include "engine/aggregators.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/logging.h"

namespace ariadne {

double AggregatorRegistry::Identity(AggregateOp op) {
  switch (op) {
    case AggregateOp::kSum:
      return 0.0;
    case AggregateOp::kMin:
      return std::numeric_limits<double>::infinity();
    case AggregateOp::kMax:
      return -std::numeric_limits<double>::infinity();
  }
  return 0.0;
}

void AggregatorRegistry::Register(const std::string& name, AggregateOp op) {
  std::lock_guard<std::mutex> lock(mu_);
  slots_[name] = Slot{op, Identity(op), Identity(op)};
}

void AggregatorRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.clear();
}

bool AggregatorRegistry::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.count(name) > 0;
}

void AggregatorRegistry::Accumulate(const std::string& name, double v) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(name);
  ARIADNE_CHECK(it != slots_.end());
  Slot& slot = it->second;
  switch (slot.op) {
    case AggregateOp::kSum:
      slot.current += v;
      break;
    case AggregateOp::kMin:
      slot.current = std::min(slot.current, v);
      break;
    case AggregateOp::kMax:
      slot.current = std::max(slot.current, v);
      break;
  }
}

double AggregatorRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(name);
  ARIADNE_CHECK(it != slots_.end());
  return it->second.previous;
}

void AggregatorRegistry::Serialize(BinaryWriter& w) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) names.push_back(name);
  std::sort(names.begin(), names.end());
  w.WriteU64(names.size());
  for (const std::string& name : names) {
    const Slot& slot = slots_.at(name);
    w.WriteString(name);
    w.WriteU8(static_cast<uint8_t>(slot.op));
    w.WriteDouble(slot.current);
    w.WriteDouble(slot.previous);
  }
}

Status AggregatorRegistry::Deserialize(BinaryReader& r) {
  ARIADNE_ASSIGN_OR_RETURN(uint64_t n, r.ReadU64());
  std::unordered_map<std::string, Slot> slots;
  for (uint64_t i = 0; i < n; ++i) {
    ARIADNE_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    ARIADNE_ASSIGN_OR_RETURN(uint8_t op, r.ReadU8());
    if (op > static_cast<uint8_t>(AggregateOp::kMax)) {
      return Status::ParseError("bad aggregator op tag " + std::to_string(op) +
                                " for '" + name + "' in checkpoint");
    }
    Slot slot;
    slot.op = static_cast<AggregateOp>(op);
    ARIADNE_ASSIGN_OR_RETURN(slot.current, r.ReadDouble());
    ARIADNE_ASSIGN_OR_RETURN(slot.previous, r.ReadDouble());
    slots[name] = slot;
  }
  std::lock_guard<std::mutex> lock(mu_);
  slots_ = std::move(slots);
  return Status::OK();
}

void AggregatorRegistry::EndSuperstep() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, slot] : slots_) {
    slot.previous = slot.current;
    slot.current = Identity(slot.op);
  }
}

}  // namespace ariadne
