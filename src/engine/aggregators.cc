#include "engine/aggregators.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace ariadne {

double AggregatorRegistry::Identity(AggregateOp op) {
  switch (op) {
    case AggregateOp::kSum:
      return 0.0;
    case AggregateOp::kMin:
      return std::numeric_limits<double>::infinity();
    case AggregateOp::kMax:
      return -std::numeric_limits<double>::infinity();
  }
  return 0.0;
}

void AggregatorRegistry::Register(const std::string& name, AggregateOp op) {
  std::lock_guard<std::mutex> lock(mu_);
  slots_[name] = Slot{op, Identity(op), Identity(op)};
}

void AggregatorRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.clear();
}

bool AggregatorRegistry::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.count(name) > 0;
}

void AggregatorRegistry::Accumulate(const std::string& name, double v) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(name);
  ARIADNE_CHECK(it != slots_.end());
  Slot& slot = it->second;
  switch (slot.op) {
    case AggregateOp::kSum:
      slot.current += v;
      break;
    case AggregateOp::kMin:
      slot.current = std::min(slot.current, v);
      break;
    case AggregateOp::kMax:
      slot.current = std::max(slot.current, v);
      break;
  }
}

double AggregatorRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(name);
  ARIADNE_CHECK(it != slots_.end());
  return it->second.previous;
}

void AggregatorRegistry::EndSuperstep() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, slot] : slots_) {
    slot.previous = slot.current;
    slot.current = Identity(slot.op);
  }
}

}  // namespace ariadne
