#ifndef ARIADNE_ENGINE_VERTEX_PROGRAM_H_
#define ARIADNE_ENGINE_VERTEX_PROGRAM_H_

#include <span>
#include <string>

#include "common/serialize.h"
#include "common/status.h"
#include "engine/aggregators.h"
#include "engine/types.h"
#include "graph/graph.h"

namespace ariadne {

/// Commutative, associative message fold applied at delivery time
/// (Giraph's Combiner). Reduces inbox sizes for analytics like SSSP (min)
/// or PageRank (sum).
template <typename M>
class MessageCombiner {
 public:
  virtual ~MessageCombiner() = default;
  virtual M Combine(const M& a, const M& b) const = 0;
};

template <typename M>
class MinCombiner final : public MessageCombiner<M> {
 public:
  M Combine(const M& a, const M& b) const override { return a < b ? a : b; }
};

template <typename M>
class MaxCombiner final : public MessageCombiner<M> {
 public:
  M Combine(const M& a, const M& b) const override { return a < b ? b : a; }
};

template <typename M>
class SumCombiner final : public MessageCombiner<M> {
 public:
  M Combine(const M& a, const M& b) const override { return a + b; }
};

/// Per-vertex view of the engine during Compute. Abstract so that
/// provenance wrappers (capture, online querying) can interpose on sends
/// and value updates without any change to the engine or the analytic —
/// the architecture property the paper relies on (§2.2, §5.2).
template <typename V, typename M>
class VertexContext {
 public:
  virtual ~VertexContext() = default;

  virtual VertexId id() const = 0;
  virtual Superstep superstep() const = 0;
  virtual const Graph& graph() const = 0;

  virtual const V& value() const = 0;
  virtual void SetValue(V value) = 0;

  /// Queues `message` for delivery to `target` at superstep()+1. `target`
  /// may be any vertex id, not only a neighbor (Giraph semantics; the
  /// paper's Query 4 audits exactly this loophole).
  virtual void SendMessage(VertexId target, M message) = 0;

  /// Halts this vertex; it recomputes only if a message arrives.
  virtual void VoteToHalt() = 0;

  virtual void AggregateDouble(const std::string& name, double v) = 0;
  virtual double GetAggregate(const std::string& name) const = 0;

  // -- Convenience helpers (non-virtual, defined over the above). --

  int64_t num_vertices() const { return graph().num_vertices(); }
  std::span<const VertexId> out_neighbors() const {
    return graph().OutNeighbors(id());
  }
  std::span<const double> out_weights() const {
    return graph().OutWeights(id());
  }
  int64_t out_degree() const { return graph().OutDegree(id()); }
  int64_t in_degree() const { return graph().InDegree(id()); }

  void SendToAllOutNeighbors(const M& message) {
    for (VertexId target : out_neighbors()) SendMessage(target, message);
  }
};

/// A vertex-centric program (paper Appendix A): the same Compute runs on
/// every active vertex each superstep; messages sent at superstep s are
/// visible at s+1; the computation ends when every vertex has voted to
/// halt and no messages are in flight.
template <typename V, typename M>
class VertexProgram {
 public:
  using ValueType = V;
  using MessageType = M;

  virtual ~VertexProgram() = default;

  /// Vertex value before superstep 0.
  virtual V InitialValue(VertexId id, const Graph& graph) const = 0;

  /// The per-vertex kernel. `messages` are the messages delivered this
  /// superstep (already combined if combiner() is non-null).
  virtual void Compute(VertexContext<V, M>& ctx,
                       std::span<const M> messages) = 0;

  /// Optional message combiner; nullptr disables combining. The returned
  /// pointer must outlive the run (typically a member of the program).
  virtual const MessageCombiner<M>* combiner() const { return nullptr; }

  /// Registers global aggregators before superstep 0.
  virtual void RegisterAggregators(AggregatorRegistry& registry) {
    (void)registry;
  }

  /// Runs on the "master" after each superstep barrier; may inspect
  /// aggregators and set `master.halt` (Giraph's MasterCompute).
  virtual void MasterCompute(MasterContext& master) { (void)master; }

  // -- Checkpoint / restart hooks (DESIGN.md §2.4) --
  //
  // The engine snapshots vertex values, inboxes and aggregators itself;
  // these hooks cover state the *program* keeps between supersteps.
  // Stateless analytics (PageRank, SSSP, WCC) need nothing: the defaults
  // say "supported, no state". Programs with state the engine cannot see
  // either serialize it here (OnlineProgram's fast-capture path embeds
  // the provenance store image) or override checkpoint_supported() to
  // refuse with a clear reason.

  /// False when this program cannot be checkpointed; `why` (if non-null)
  /// receives a human-readable reason for the Unsupported error.
  virtual bool checkpoint_supported(std::string* why = nullptr) const {
    (void)why;
    return true;
  }

  /// Appends program state to the checkpoint body at a barrier. Bulky
  /// append-only state should go into sidecar files under `io.dir`
  /// (written before checkpoint.bin references them) with only a
  /// watermark in the body — see OnlineProgram's segments file.
  virtual Status SaveCheckpointState(BinaryWriter& w,
                                     const CheckpointIo& io) {
    (void)w;
    (void)io;
    return Status::OK();
  }

  /// Restores state written by SaveCheckpointState. Called on resume
  /// after RegisterAggregators and before the first resumed superstep.
  virtual Status LoadCheckpointState(BinaryReader& r,
                                     const CheckpointIo& io) {
    (void)r;
    (void)io;
    return Status::OK();
  }
};

}  // namespace ariadne

#endif  // ARIADNE_ENGINE_VERTEX_PROGRAM_H_
