#ifndef ARIADNE_ENGINE_TYPES_H_
#define ARIADNE_ENGINE_TYPES_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.h"

namespace ariadne {

/// BSP superstep index, 0-based.
using Superstep = int32_t;

/// Engine configuration (Giraph-job-conf equivalent).
struct EngineOptions {
  /// Worker threads for vertex compute; <= 1 runs inline (deterministic).
  size_t num_threads = 1;
  /// Hard cap; Run() stops after this many supersteps even if messages
  /// remain in flight.
  Superstep max_supersteps = 1000000;
  /// Record per-superstep statistics in RunStats::steps.
  bool collect_per_step_stats = true;
};

/// Statistics for one superstep.
struct SuperstepStats {
  Superstep step = 0;
  int64_t active_vertices = 0;
  int64_t messages_sent = 0;
  double seconds = 0.0;
};

/// Statistics for a whole run; the provenance overhead experiments report
/// ratios of RunStats::seconds.
struct RunStats {
  Superstep supersteps = 0;  ///< supersteps actually executed
  int64_t total_messages = 0;
  int64_t total_active = 0;  ///< sum of active vertices over supersteps
  double seconds = 0.0;
  bool halted_by_cap = false;  ///< stopped by max_supersteps, not quiescence
  std::vector<SuperstepStats> steps;
};

}  // namespace ariadne

#endif  // ARIADNE_ENGINE_TYPES_H_
