#ifndef ARIADNE_ENGINE_TYPES_H_
#define ARIADNE_ENGINE_TYPES_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.h"

namespace ariadne {

/// BSP superstep index, 0-based.
using Superstep = int32_t;

/// How messages travel from a sender's Compute to the target's inbox.
enum class MessageRouting {
  /// Two-phase owner-computes routing (DESIGN.md §2): workers fill
  /// per-chunk, per-shard outboxes, then each shard's owner merges it into
  /// the inboxes without any locking. Deterministic for any thread count.
  kSharded,
  /// The pre-sharding path: every worker merges its whole outbox under one
  /// global mutex. Kept as the bench baseline and as a reference
  /// implementation; O(threads) contention on the merge lock.
  kGlobalLock,
};

/// Engine configuration (Giraph-job-conf equivalent).
struct EngineOptions {
  /// Worker threads for vertex compute; <= 1 runs inline (deterministic).
  size_t num_threads = 1;
  /// Hard cap; Run() stops after this many supersteps even if messages
  /// remain in flight.
  Superstep max_supersteps = 1000000;
  /// Record per-superstep statistics in RunStats::steps.
  bool collect_per_step_stats = true;
  /// Message routing strategy; kSharded is the default and the fast path.
  MessageRouting routing = MessageRouting::kSharded;
  /// Shards per worker for owner-computes routing (P = shard_multiplier *
  /// num_threads). More shards smooth the merge-phase load balance at the
  /// cost of smaller per-shard outboxes.
  size_t shard_multiplier = 4;
  /// Vertices per compute chunk. Chunk boundaries are a pure function of
  /// the active-set size and this knob — never of num_threads — which is
  /// what keeps message delivery order (and therefore captured provenance)
  /// bit-identical across thread counts.
  size_t chunk_size = 1024;
  /// Combine messages in the sender's per-chunk outbox when the program
  /// registers a MessageCombiner (Quegel-style sender-side combining).
  /// Cuts outbox memory traffic for high-fan-in targets; the owner merge
  /// still combines across chunks.
  bool sender_side_combining = true;
};

/// Statistics for one superstep.
struct SuperstepStats {
  Superstep step = 0;
  int64_t active_vertices = 0;
  int64_t messages_sent = 0;
  double seconds = 0.0;
  /// Phase breakdown: active-list rebuild, parallel compute (phase 1),
  /// owner merge (phase 2). compute + merge <= seconds; the remainder is
  /// aggregator/master work.
  double rebuild_seconds = 0.0;
  double compute_seconds = 0.0;
  double merge_seconds = 0.0;
};

/// Statistics for a whole run; the provenance overhead experiments report
/// ratios of RunStats::seconds.
struct RunStats {
  Superstep supersteps = 0;  ///< supersteps actually executed
  int64_t total_messages = 0;
  int64_t total_active = 0;  ///< sum of active vertices over supersteps
  double seconds = 0.0;
  bool halted_by_cap = false;  ///< stopped by max_supersteps, not quiescence
  /// Messages addressed to vertex ids outside [0, num_vertices), dropped
  /// at send time (Giraph semantics for non-existent targets). Counted in
  /// total_messages; logged once per run when non-zero.
  int64_t dropped_messages = 0;
  /// Times a MessageCombiner folded two messages into one (sender-side
  /// hits + owner-merge hits).
  int64_t combine_hits = 0;
  /// Whole-run phase totals (sums of the SuperstepStats fields, collected
  /// even when collect_per_step_stats is off).
  double rebuild_seconds = 0.0;
  double compute_seconds = 0.0;
  double merge_seconds = 0.0;
  std::vector<SuperstepStats> steps;
};

}  // namespace ariadne

#endif  // ARIADNE_ENGINE_TYPES_H_
