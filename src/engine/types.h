#ifndef ARIADNE_ENGINE_TYPES_H_
#define ARIADNE_ENGINE_TYPES_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace ariadne {

/// BSP superstep index, 0-based.
using Superstep = int32_t;

/// How messages travel from a sender's Compute to the target's inbox.
enum class MessageRouting {
  /// Two-phase owner-computes routing (DESIGN.md §2): workers fill
  /// per-chunk, per-shard outboxes, then each shard's owner merges it into
  /// the inboxes without any locking. Deterministic for any thread count.
  kSharded,
  /// The pre-sharding path: every worker merges its whole outbox under one
  /// global mutex. Kept as the bench baseline and as a reference
  /// implementation; O(threads) contention on the merge lock.
  kGlobalLock,
};

/// Engine configuration (Giraph-job-conf equivalent).
struct EngineOptions {
  /// Worker threads for vertex compute; <= 1 runs inline (deterministic).
  size_t num_threads = 1;
  /// Hard cap; Run() stops after this many supersteps even if messages
  /// remain in flight.
  Superstep max_supersteps = 1000000;
  /// Record per-superstep statistics in RunStats::steps.
  bool collect_per_step_stats = true;
  /// Message routing strategy; kSharded is the default and the fast path.
  MessageRouting routing = MessageRouting::kSharded;
  /// Shards per worker for owner-computes routing (P = shard_multiplier *
  /// num_threads). More shards smooth the merge-phase load balance at the
  /// cost of smaller per-shard outboxes.
  size_t shard_multiplier = 4;
  /// Vertices per compute chunk. Chunk boundaries are a pure function of
  /// the active-set size and this knob — never of num_threads — which is
  /// what keeps message delivery order (and therefore captured provenance)
  /// bit-identical across thread counts.
  size_t chunk_size = 1024;
  /// Combine messages in the sender's per-chunk outbox when the program
  /// registers a MessageCombiner (Quegel-style sender-side combining).
  /// Cuts outbox memory traffic for high-fan-in targets; the owner merge
  /// still combines across chunks.
  bool sender_side_combining = true;

  // -- Checkpoint / restart (DESIGN.md §2.4) --

  /// Checkpoint every N supersteps at the barrier; 0 disables (default).
  /// Requires checkpoint_dir. The checkpoint is taken after MasterCompute
  /// of superstep s whenever (s+1) % checkpoint_every == 0, i.e. it
  /// describes the state a fresh run would have at the start of s+1.
  Superstep checkpoint_every = 0;
  /// Directory holding checkpoint.bin (atomically replaced each time).
  std::string checkpoint_dir;
  /// Resume from checkpoint_dir if a valid checkpoint exists; a missing
  /// checkpoint falls back to a fresh run from superstep 0, a corrupt one
  /// is a loud ParseError (never a silent wrong resume).
  bool resume = false;
  /// Free-form configuration fingerprint recorded in every checkpoint and
  /// verified on resume, so a checkpoint from run A cannot silently resume
  /// run B (different analytic, parameters, or capture query). The engine
  /// adds graph dimensions on top of this string.
  std::string checkpoint_fingerprint;

  // -- Out-of-core vertex state (DESIGN.md §2.7) --

  /// Keep vertex values in fixed-size checksummed pages under a byte
  /// budget, spilling cold pages to a scratch file in vertex_state_dir.
  /// Requires a trivially-copyable vertex value type (the engine falls
  /// back to flat storage with a warning otherwise). Residency never
  /// affects values: runs are byte-identical to flat storage for any
  /// budget or thread count.
  bool paged_vertex_state = false;
  /// Decoded-page budget for paged vertex state (the vertex-state share of
  /// the unified memory budget, storage/memory_budget.h).
  size_t vertex_state_budget_bytes = 32ull << 20;
  /// Directory for the vertex-state spill file (required when
  /// paged_vertex_state is set; the file is scratch, removed afterwards).
  std::string vertex_state_dir;
};

/// Counters of the engine's paged vertex-value store (all zero in flat
/// mode). Mirrors GraphBackendStats for the values side of §2.7.
struct VertexStateStats {
  bool paged = false;
  uint64_t budget_bytes = 0;
  uint64_t resident_bytes = 0;
  uint64_t footprint_bytes = 0;  ///< num_vertices * sizeof(V)
  uint64_t page_faults = 0;      ///< demand loads that blocked a window
  uint64_t prefetch_loads = 0;   ///< pages loaded by the prefetcher
  uint64_t evictions = 0;
  uint64_t writebacks = 0;  ///< dirty pages written to the spill file
  int32_t pages = 0;
  /// Resilience counters (DESIGN.md §2.8): page reads / write-backs
  /// retried after a transient error, spill-fd reopen recoveries, and
  /// ops abandoned (error went sticky) after retries + reopen.
  uint64_t read_retries = 0;
  uint64_t write_retries = 0;
  uint64_t fd_reopens = 0;
  uint64_t gave_up = 0;
};

/// Context handed to the program checkpoint hooks (DESIGN.md §2.4).
/// Programs with bulky append-only state (OnlineProgram's sealed layers)
/// persist it incrementally into sidecar files under `dir` instead of
/// re-serializing everything into every checkpoint body.
struct CheckpointIo {
  /// The engine's checkpoint_dir: checkpoint.bin plus program sidecars.
  std::string dir;
};

/// Statistics for one superstep.
struct SuperstepStats {
  Superstep step = 0;
  int64_t active_vertices = 0;
  int64_t messages_sent = 0;
  double seconds = 0.0;
  /// Phase breakdown: active-list rebuild, parallel compute (phase 1),
  /// owner merge (phase 2). compute + merge <= seconds; the remainder is
  /// aggregator/master work.
  double rebuild_seconds = 0.0;
  double compute_seconds = 0.0;
  double merge_seconds = 0.0;
};

/// Statistics for a whole run; the provenance overhead experiments report
/// ratios of RunStats::seconds.
struct RunStats {
  Superstep supersteps = 0;  ///< supersteps actually executed
  int64_t total_messages = 0;
  int64_t total_active = 0;  ///< sum of active vertices over supersteps
  double seconds = 0.0;
  bool halted_by_cap = false;  ///< stopped by max_supersteps, not quiescence
  /// Messages addressed to vertex ids outside [0, num_vertices), dropped
  /// at send time (Giraph semantics for non-existent targets). Counted in
  /// total_messages; logged once per run when non-zero.
  int64_t dropped_messages = 0;
  /// Times a MessageCombiner folded two messages into one (sender-side
  /// hits + owner-merge hits).
  int64_t combine_hits = 0;
  /// Whole-run phase totals (sums of the SuperstepStats fields, collected
  /// even when collect_per_step_stats is off).
  double rebuild_seconds = 0.0;
  double compute_seconds = 0.0;
  double merge_seconds = 0.0;

  // -- Recovery counters (DESIGN.md §2.4) --

  int64_t checkpoints_written = 0;  ///< checkpoints taken this run
  double checkpoint_seconds = 0.0;  ///< wall time spent writing them
  /// Superstep the run resumed at, or -1 for a fresh start. A resumed run
  /// executes supersteps [resumed_from_step, end); RunStats::supersteps
  /// still reports the absolute superstep index reached, as if the run
  /// had never been interrupted.
  Superstep resumed_from_step = -1;
  int64_t injected_faults = 0;      ///< injector rules fired during the run
  int64_t checkpoint_failures = 0;  ///< checkpoint writes that failed (the
                                    ///< run continues; next interval retries)
  /// Capture was degraded mid-run (unrecoverable spill failure): the
  /// analytic output is still exact, but the provenance image holds only
  /// the degraded subset and layered eval refuses full-history queries
  /// over it. capture_degraded_at is the superstep where degradation hit.
  bool capture_degraded = false;
  Superstep capture_degraded_at = -1;

  // -- Memory accounting (DESIGN.md §2.7) --

  /// Process peak RSS (VmHWM) sampled when the run finished; 0 if the
  /// platform offers no reading. Covers the whole process, not just this
  /// engine — the out-of-core claim in one number.
  uint64_t peak_rss_bytes = 0;
  /// Topology cache counters of the graph backend this run iterated
  /// (all zero for the in-memory backend).
  GraphBackendStats graph_backend;
  /// Paged vertex-value store counters (all zero in flat mode).
  VertexStateStats vertex_state;
  std::vector<SuperstepStats> steps;
};

}  // namespace ariadne

#endif  // ARIADNE_ENGINE_TYPES_H_
