#ifndef ARIADNE_ENGINE_ENGINE_H_
#define ARIADNE_ENGINE_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/mem.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "engine/aggregators.h"
#include "engine/types.h"
#include "engine/vertex_program.h"
#include "engine/vertex_state.h"
#include "graph/graph.h"
#include "recovery/checkpoint.h"
#include "recovery/fault_injector.h"

namespace ariadne {

/// Bulk-Synchronous-Parallel vertex-centric engine (the Giraph stand-in,
/// see DESIGN.md §2). Loads the whole graph in memory, runs supersteps
/// with a global barrier, delivers messages between supersteps, and stops
/// when every vertex has voted to halt and no messages are in flight (or
/// at max_supersteps).
///
/// Each superstep runs in two parallel phases (owner-computes routing):
///
///   1. *Compute*: the active list is cut into fixed-size chunks; each
///      chunk runs the vertex kernel and appends its sends into a
///      per-chunk outbox partitioned into P = shard_multiplier * threads
///      shards by target id (with sender-side combining when the program
///      registers a MessageCombiner).
///   2. *Merge*: each shard is merged into `next_inbox_` by exactly one
///      task, walking the chunks in index order — no locks, no atomics on
///      the message path.
///
/// Because chunk boundaries depend only on the active-set size (never on
/// the thread count) and the merge walks chunks in order, every inbox
/// receives its messages in the exact order a serial run would produce.
/// Vertex values and captured provenance are therefore bit-identical for
/// any `num_threads` (see DESIGN.md §2 and engine_parallel_test.cc).
///
/// The engine is provenance-agnostic: capture and online query evaluation
/// are ordinary `VertexProgram`s wrapping the analytic (src/provenance,
/// src/eval), exactly as the paper requires ("without modifying the graph
/// processing engine itself").
template <typename V, typename M>
class Engine {
 public:
  /// `graph` must outlive the engine.
  explicit Engine(const Graph* graph, EngineOptions options = {})
      : graph_(graph),
        options_(options),
        pool_(options.num_threads) {}

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs `program` to quiescence (or the superstep cap). The program must
  /// outlive the call. Vertex values are readable afterwards via values().
  Result<RunStats> Run(VertexProgram<V, M>& program) {
    const VertexId n = graph_->num_vertices();
    if (n == 0) return Status::InvalidArgument("empty graph");
    if (options_.max_supersteps < 0) {
      return Status::InvalidArgument("max_supersteps must be >= 0");
    }
    const bool checkpointing = options_.checkpoint_every > 0;
    if (checkpointing || options_.resume) {
      if (options_.checkpoint_dir.empty()) {
        return Status::InvalidArgument(
            "checkpoint_every/resume require checkpoint_dir");
      }
      if constexpr (!(recovery::Checkpointable<V> &&
                      recovery::Checkpointable<M>)) {
        return Status::Unsupported(
            "checkpointing is unsupported for this vertex-value/message "
            "type combination (no CheckpointTraits specialization)");
      } else {
        std::string why;
        if (!program.checkpoint_supported(&why)) {
          return Status::Unsupported(
              "this program cannot be checkpointed" +
              (why.empty() ? std::string() : ": " + why));
        }
      }
    }

    // Out-of-core state (DESIGN.md §2.7): opt into paged vertex values,
    // and note whether either graph or values live behind a buffer
    // manager (enables residency hints + barrier error checks below).
    if (options_.paged_vertex_state && !values_.paged()) {
      if (options_.vertex_state_dir.empty()) {
        return Status::InvalidArgument(
            "paged_vertex_state requires vertex_state_dir");
      }
      Status cfg = values_.ConfigurePaged(
          options_.vertex_state_dir + "/vertex_state.spill",
          options_.vertex_state_budget_bytes);
      if (cfg.IsUnsupported()) {
        // Non-trivially-copyable V cannot be paged; fall back loudly.
        ARIADNE_LOG(Warning)
            << "engine: " << cfg.message() << "; using flat vertex state";
      } else if (!cfg.ok()) {
        return cfg;
      }
    }
    ooc_ = graph_->paged() || values_.paged();

    PrepareBuffers(n);
    ARIADNE_RETURN_NOT_OK(values_.Reset(static_cast<size_t>(n)));
    {
      // Initialize values through block windows: contiguous, so the paged
      // store streams pages instead of faulting per vertex.
      constexpr VertexId kInitBlock = 1 << 16;
      for (VertexId b = 0; b < n; b += kInitBlock) {
        const VertexId last = std::min<VertexId>(b + kInitBlock, n) - 1;
        if (ooc_ && last + 1 < n) {
          graph_->PrefetchVertexRange(last + 1,
                                      std::min<VertexId>(last + kInitBlock, n - 1));
        }
        auto window = values_.AcquireWindow(b, last);
        for (VertexId v = b; v <= last; ++v) {
          window.at(v) = program.InitialValue(v, *graph_);
        }
      }
    }
    aggregators_.Reset();
    program.RegisterAggregators(aggregators_);
    const MessageCombiner<M>* combiner = program.combiner();

    const size_t workers = pool_.num_workers();
    num_shards_ = std::max<size_t>(1, options_.shard_multiplier * workers);
    const size_t chunk_size = std::max<size_t>(1, options_.chunk_size);
    const bool sharded = options_.routing == MessageRouting::kSharded;

    RunStats stats;
    const uint64_t faults_before =
        recovery::FaultInjector::Global().fired_count();
    Superstep start_step = 0;
    if (options_.resume) {
      if constexpr (recovery::Checkpointable<V> &&
                    recovery::Checkpointable<M>) {
        auto resumed = ResumeFromCheckpoint(program);
        if (resumed.ok()) {
          start_step = resumed.value();
          stats.resumed_from_step = start_step;
        } else if (!resumed.status().IsNotFound()) {
          // Corrupt or mismatched checkpoints are loud errors; only a
          // *missing* checkpoint falls back to a fresh run (the killed
          // process may have died before the first barrier).
          return resumed.status();
        }
      }
    }

    WallTimer run_timer;
    for (Superstep step = start_step; step < options_.max_supersteps;
         ++step) {
      // Fault point "superstep": a scripted error/throw/crash at the start
      // of the N-th executed superstep (crash-matrix tests kill here).
      ARIADNE_RETURN_NOT_OK(recovery::CheckFaultPoint("superstep"));
      WallTimer step_timer;
      WallTimer phase_timer;

      // A vertex computes iff it has not voted to halt or received mail.
      RebuildActiveList(n, chunk_size);
      const double rebuild_seconds = phase_timer.ElapsedSeconds();
      if (active_.empty()) break;

      StepCounters counters;
      double compute_seconds = 0.0, merge_seconds = 0.0;
      if (sharded) {
        phase_timer.Restart();
        const size_t num_chunks =
            ComputePhaseSharded(program, combiner, step, chunk_size, workers);
        compute_seconds = phase_timer.ElapsedSeconds();
        phase_timer.Restart();
        MergePhaseSharded(combiner, num_chunks);
        merge_seconds = phase_timer.ElapsedSeconds();
        for (size_t c = 0; c < num_chunks; ++c) {
          counters.sent += chunk_sent_[c];
          counters.dropped += chunk_dropped_[c];
          counters.combined += chunk_combined_[c];
        }
        for (int64_t hits : shard_combined_) counters.combined += hits;
      } else {
        phase_timer.Restart();
        ComputeAndMergeGlobalLock(program, combiner, step, &counters);
        compute_seconds = phase_timer.ElapsedSeconds();
      }

      // Out-of-core barrier check: the span-returning adjacency/value
      // accessors cannot report IO or checksum failures inline, so the
      // backends record them sticky and the run fails here — loudly,
      // before any partially-computed superstep is observable.
      if (ooc_) {
        ARIADNE_RETURN_NOT_OK(graph_->backend_error().WithContext(
            "graph backend failed during superstep " + std::to_string(step)));
        ARIADNE_RETURN_NOT_OK(values_.error().WithContext(
            "vertex state failed during superstep " + std::to_string(step)));
      }

      aggregators_.EndSuperstep();
      MasterContext master;
      master.superstep = step;
      master.aggregators = &aggregators_;
      program.MasterCompute(master);

      stats.supersteps = step + 1;
      stats.total_messages += counters.sent;
      stats.dropped_messages += counters.dropped;
      stats.combine_hits += counters.combined;
      stats.total_active += static_cast<int64_t>(active_.size());
      stats.rebuild_seconds += rebuild_seconds;
      stats.compute_seconds += compute_seconds;
      stats.merge_seconds += merge_seconds;
      if (options_.collect_per_step_stats) {
        stats.steps.push_back(SuperstepStats{
            .step = step,
            .active_vertices = static_cast<int64_t>(active_.size()),
            .messages_sent = counters.sent,
            .seconds = step_timer.ElapsedSeconds(),
            .rebuild_seconds = rebuild_seconds,
            .compute_seconds = compute_seconds,
            .merge_seconds = merge_seconds});
      }

      std::swap(inbox_, next_inbox_);

      // Checkpoint at the barrier: values, halted bitmap, the freshly
      // swapped inbox (the messages superstep step+1 will consume),
      // aggregators and program state — i.e. exactly the state a fresh
      // run has at the start of superstep step+1.
      if (checkpointing && (step + 1) % options_.checkpoint_every == 0 &&
          !master.halt) {
        if constexpr (recovery::Checkpointable<V> &&
                      recovery::Checkpointable<M>) {
          WallTimer ckpt_timer;
          Status written = WriteCheckpoint(program, step + 1);
          stats.checkpoint_seconds += ckpt_timer.ElapsedSeconds();
          if (written.ok()) {
            ++stats.checkpoints_written;
          } else {
            // A failed checkpoint never kills the analytic: the previous
            // checkpoint (if any) is still intact on disk thanks to the
            // atomic replace, and the next interval tries again.
            ++stats.checkpoint_failures;
            ARIADNE_LOG(Warning) << "engine: checkpoint at superstep "
                                 << (step + 1)
                                 << " failed: " << written.message();
          }
        }
      }

      if (master.halt) break;
    }
    stats.halted_by_cap = stats.supersteps == options_.max_supersteps &&
                          HasPendingWork();
    stats.seconds = run_timer.ElapsedSeconds();
    stats.peak_rss_bytes = PeakRssBytes();
    stats.graph_backend = graph_->backend_stats();
    stats.vertex_state = values_.stats();
    stats.injected_faults = static_cast<int64_t>(
        recovery::FaultInjector::Global().fired_count() - faults_before);
    if (stats.dropped_messages > 0) {
      ARIADNE_LOG(Warning) << "engine: dropped " << stats.dropped_messages
                           << " message(s) addressed to out-of-range vertex "
                              "ids (valid range [0, "
                           << n << ")) during this run";
    }
    return stats;
  }

  /// Zero-copy view of the vertex values. FLAT MODE ONLY: with paged
  /// vertex state there is no contiguous array and this returns an empty
  /// span — use CopyValuesTo, which works in both modes.
  std::span<const V> values() const { return values_.flat_span(); }
  const V& value(VertexId v) const {
    return values_.flat_span()[static_cast<size_t>(v)];
  }
  /// Copies every vertex value into `out` (works for flat and paged
  /// vertex state; the result-reporting path of Session and the tools).
  Status CopyValuesTo(std::vector<V>* out) { return values_.CopyTo(out); }
  const Graph& graph() const { return *graph_; }

 private:
  using Send = std::pair<VertexId, M>;

  /// Message counters of one superstep (summed from race-free per-chunk /
  /// per-shard slots).
  struct StepCounters {
    int64_t sent = 0;
    int64_t dropped = 0;
    int64_t combined = 0;
  };

  /// One compute chunk's outbox, partitioned by target shard. Kept across
  /// supersteps so the inner vectors retain their capacity.
  struct ShardedOutbox {
    std::vector<std::vector<Send>> shards;
  };

  /// Per-worker scratch for sender-side combining: maps a target id to
  /// its slot in the current chunk's outbox. `epoch` tags entries with the
  /// chunk that wrote them, so the arrays never need clearing.
  struct CombineScratch {
    std::vector<uint64_t> epoch;
    std::vector<uint32_t> pos;
    uint64_t current = 0;
  };

  /// Concrete context handed to Compute; reset per vertex within a chunk.
  /// Routes SendMessage into either the chunk's sharded outbox (owner-
  /// computes mode) or a flat per-task outbox (global-lock mode).
  class Ctx final : public VertexContext<V, M> {
   public:
    Ctx(Engine* engine, Superstep step) : engine_(engine), step_(step) {}

    void BeginChunk(std::vector<std::vector<Send>>* shards,
                    std::vector<Send>* flat,
                    const MessageCombiner<M>* sender_combiner,
                    CombineScratch* scratch,
                    std::vector<std::pair<std::string, double>>* agg_sink) {
      shards_ = shards;
      flat_ = flat;
      sender_combiner_ = sender_combiner;
      scratch_ = scratch;
      agg_sink_ = agg_sink;
      sent_ = dropped_ = combined_ = 0;
    }

    void SetWindow(typename VertexState<V>::Window* window) {
      window_ = window;
    }

    void Reset(VertexId v) {
      vertex_ = v;
      voted_halt_ = false;
    }
    bool voted_halt() const { return voted_halt_; }
    int64_t sent() const { return sent_; }
    int64_t dropped() const { return dropped_; }
    int64_t combined() const { return combined_; }

    VertexId id() const override { return vertex_; }
    Superstep superstep() const override { return step_; }
    const Graph& graph() const override { return *engine_->graph_; }
    const V& value() const override { return window_->at(vertex_); }
    void SetValue(V value) override {
      window_->at(vertex_) = std::move(value);
    }
    void SendMessage(VertexId target, M message) override {
      ++sent_;
      if (target < 0 || target >= engine_->graph_->num_vertices()) {
        // Giraph semantics for messages to non-existent vertex ids: the
        // message is dropped, but visibly (RunStats::dropped_messages).
        ++dropped_;
        return;
      }
      if (flat_ != nullptr) {
        flat_->emplace_back(target, std::move(message));
        return;
      }
      auto& box = (*shards_)[engine_->ShardOf(target)];
      if (scratch_ != nullptr) {
        const size_t t = static_cast<size_t>(target);
        if (scratch_->epoch[t] == scratch_->current) {
          Send& slot = box[scratch_->pos[t]];
          slot.second = sender_combiner_->Combine(slot.second, message);
          ++combined_;
          return;
        }
        scratch_->epoch[t] = scratch_->current;
        scratch_->pos[t] = static_cast<uint32_t>(box.size());
      }
      box.emplace_back(target, std::move(message));
    }
    void VoteToHalt() override { voted_halt_ = true; }
    void AggregateDouble(const std::string& name, double v) override {
      // In sharded mode accumulations are buffered per chunk and folded in
      // chunk order at the barrier: no registry mutex on the hot path, and
      // floating-point aggregate sums stay identical for any thread count.
      if (agg_sink_ != nullptr) {
        agg_sink_->emplace_back(name, v);
      } else {
        engine_->aggregators_.Accumulate(name, v);
      }
    }
    double GetAggregate(const std::string& name) const override {
      return engine_->aggregators_.Get(name);
    }

   private:
    Engine* engine_;
    Superstep step_;
    VertexId vertex_ = 0;
    /// Pinned value window of the current chunk (set by RunChunk).
    typename VertexState<V>::Window* window_ = nullptr;
    std::vector<std::vector<Send>>* shards_ = nullptr;
    std::vector<Send>* flat_ = nullptr;
    const MessageCombiner<M>* sender_combiner_ = nullptr;
    CombineScratch* scratch_ = nullptr;
    std::vector<std::pair<std::string, double>>* agg_sink_ = nullptr;
    bool voted_halt_ = false;
    int64_t sent_ = 0;
    int64_t dropped_ = 0;
    int64_t combined_ = 0;
  };

  size_t ShardOf(VertexId target) const {
    return static_cast<size_t>(static_cast<uint64_t>(target) * num_shards_ /
                               static_cast<uint64_t>(graph_->num_vertices()));
  }

  /// Resets run state, reusing inbox/outbox buffers (and their inner
  /// capacities) from previous runs instead of reallocating.
  void PrepareBuffers(VertexId n) {
    const size_t un = static_cast<size_t>(n);
    halted_.assign(un, 0);
    if (inbox_.size() != un) {
      inbox_.assign(un, {});
      next_inbox_.assign(un, {});
    } else {
      for (auto& box : inbox_) box.clear();
      for (auto& box : next_inbox_) box.clear();
    }
  }

  /// Rebuilds `active_` (ascending vertex order) with a two-pass parallel
  /// count + fill; replaces the serial O(n) scan per superstep.
  void RebuildActiveList(VertexId n, size_t chunk_size) {
    const size_t un = static_cast<size_t>(n);
    const size_t chunk = std::max<size_t>(chunk_size, 2048);
    const size_t num_chunks = (un + chunk - 1) / chunk;
    rebuild_offsets_.assign(num_chunks, 0);
    pool_.ParallelForChunked(
        un, chunk, [&](size_t, size_t c, size_t begin, size_t end) {
          size_t count = 0;
          for (size_t v = begin; v < end; ++v) {
            if (!halted_[v] || !inbox_[v].empty()) ++count;
          }
          rebuild_offsets_[c] = count;
        });
    size_t total = 0;
    for (size_t& offset : rebuild_offsets_) {
      const size_t count = offset;
      offset = total;
      total += count;
    }
    active_.resize(total);
    pool_.ParallelForChunked(
        un, chunk, [&](size_t, size_t c, size_t begin, size_t end) {
          size_t out = rebuild_offsets_[c];
          for (size_t v = begin; v < end; ++v) {
            if (!halted_[v] || !inbox_[v].empty()) {
              active_[out++] = static_cast<VertexId>(v);
            }
          }
        });
  }

  /// Phase 1 of a sharded superstep: run the kernel chunk by chunk,
  /// filling per-chunk sharded outboxes. Returns the number of chunks.
  size_t ComputePhaseSharded(VertexProgram<V, M>& program,
                             const MessageCombiner<M>* combiner,
                             Superstep step, size_t chunk_size,
                             size_t workers) {
    const size_t num_chunks = (active_.size() + chunk_size - 1) / chunk_size;
    if (outboxes_.size() < num_chunks) outboxes_.resize(num_chunks);
    if (agg_buffers_.size() < num_chunks) agg_buffers_.resize(num_chunks);
    chunk_sent_.assign(num_chunks, 0);
    chunk_dropped_.assign(num_chunks, 0);
    chunk_combined_.assign(num_chunks, 0);
    const bool sender_combine =
        combiner != nullptr && options_.sender_side_combining;
    if (sender_combine && scratch_.size() != workers) {
      scratch_.assign(workers, CombineScratch{});
    }
    pool_.ParallelForChunked(
        active_.size(), chunk_size,
        [&](size_t worker, size_t c, size_t begin, size_t end) {
          ShardedOutbox& out = outboxes_[c];
          if (out.shards.size() != num_shards_) {
            out.shards.clear();
            out.shards.resize(num_shards_);
          } else {
            for (auto& shard : out.shards) shard.clear();
          }
          CombineScratch* scratch = nullptr;
          if (sender_combine) {
            scratch = &scratch_[worker];
            if (scratch->epoch.size() !=
                static_cast<size_t>(graph_->num_vertices())) {
              scratch->epoch.assign(
                  static_cast<size_t>(graph_->num_vertices()), 0);
              scratch->pos.resize(
                  static_cast<size_t>(graph_->num_vertices()));
              scratch->current = 0;
            }
            ++scratch->current;
          }
          Ctx ctx(this, step);
          agg_buffers_[c].clear();
          ctx.BeginChunk(&out.shards, nullptr,
                         sender_combine ? combiner : nullptr, scratch,
                         &agg_buffers_[c]);
          RunChunk(program, ctx, begin, end);
          chunk_sent_[c] = ctx.sent();
          chunk_dropped_[c] = ctx.dropped();
          chunk_combined_[c] = ctx.combined();
        });
    // Fold buffered aggregate accumulations in chunk order (deterministic
    // for any thread count; see Ctx::AggregateDouble).
    for (size_t c = 0; c < num_chunks; ++c) {
      for (const auto& [name, v] : agg_buffers_[c]) {
        aggregators_.Accumulate(name, v);
      }
    }
    return num_chunks;
  }

  /// Phase 2 of a sharded superstep: every shard is drained into
  /// `next_inbox_` by exactly one task, walking chunks in index order.
  /// Shards partition the target space, so no synchronization is needed,
  /// and the chunk-order walk reproduces serial delivery order exactly.
  void MergePhaseSharded(const MessageCombiner<M>* combiner,
                         size_t num_chunks) {
    shard_combined_.assign(num_shards_, 0);
    const bool injecting = recovery::InjectionArmed();
    pool_.ParallelForChunked(
        num_shards_, 1, [&](size_t, size_t s, size_t, size_t) {
          if (injecting) {
            // Fault point "shard-drop" (error kind only — this runs on a
            // pool thread): the fired shard's outboxes are discarded, i.e.
            // one shard's worth of messages is lost this superstep.
            if (!recovery::FaultInjector::Global().Hit("shard-drop").ok()) {
              for (size_t c = 0; c < num_chunks; ++c) {
                outboxes_[c].shards[s].clear();
              }
              return;
            }
          }
          int64_t combined = 0;
          for (size_t c = 0; c < num_chunks; ++c) {
            for (Send& send : outboxes_[c].shards[s]) {
              auto& box = next_inbox_[static_cast<size_t>(send.first)];
              if (combiner != nullptr && !box.empty()) {
                box[0] = combiner->Combine(box[0], send.second);
                ++combined;
              } else {
                box.push_back(std::move(send.second));
              }
            }
          }
          shard_combined_[s] = combined;
        });
  }

  /// Legacy routing (MessageRouting::kGlobalLock): every task funnels its
  /// whole outbox through one mutex. Kept as the baseline the sharded path
  /// is benchmarked against (bench_engine_micro --json).
  void ComputeAndMergeGlobalLock(VertexProgram<V, M>& program,
                                 const MessageCombiner<M>* combiner,
                                 Superstep step, StepCounters* counters) {
    std::mutex merge_mu;
    pool_.ParallelFor(active_.size(), [&](size_t begin, size_t end) {
      Ctx ctx(this, step);
      std::vector<Send> outbox;
      ctx.BeginChunk(nullptr, &outbox, nullptr, nullptr, nullptr);
      RunChunk(program, ctx, begin, end);
      std::lock_guard<std::mutex> lock(merge_mu);
      counters->sent += ctx.sent();
      counters->dropped += ctx.dropped();
      for (Send& send : outbox) {
        auto& box = next_inbox_[static_cast<size_t>(send.first)];
        if (combiner != nullptr && !box.empty()) {
          box[0] = combiner->Combine(box[0], send.second);
          ++counters->combined;
        } else {
          box.push_back(std::move(send.second));
        }
      }
    });
  }

  /// Runs the kernel for active-list positions [begin, end). The active
  /// list is ascending, so the chunk's vertices span the contiguous range
  /// [active_[begin], active_[end-1]] — one pinned value window covers
  /// the whole chunk, and (out-of-core) the *next* chunk's topology and
  /// value pages are hinted to the prefetchers before this one computes,
  /// which is the "shard k computes while shard k+1 faults in" overlap of
  /// DESIGN.md §2.7.
  void RunChunk(VertexProgram<V, M>& program, Ctx& ctx, size_t begin,
                size_t end) {
    if (ooc_ && end < active_.size()) {
      const size_t next_end =
          std::min(end + (end - begin), active_.size());
      graph_->PrefetchVertexRange(active_[end], active_[next_end - 1]);
      values_.PrefetchRange(active_[end], active_[next_end - 1]);
    }
    auto window = values_.AcquireWindow(active_[begin], active_[end - 1]);
    ctx.SetWindow(&window);
    for (size_t i = begin; i < end; ++i) {
      const VertexId v = active_[i];
      ctx.Reset(v);
      halted_[static_cast<size_t>(v)] = 0;
      auto& mail = inbox_[static_cast<size_t>(v)];
      program.Compute(ctx, std::span<const M>(mail.data(), mail.size()));
      if (ctx.voted_halt()) halted_[static_cast<size_t>(v)] = 1;
      mail.clear();
    }
  }

  /// What this run is, for checkpoint/run matching: the caller-provided
  /// fingerprint (analytic + parameters + capture query) plus the graph
  /// dimensions. A checkpoint whose fingerprint differs is refused.
  std::string FingerprintString() const {
    return options_.checkpoint_fingerprint +
           "|v=" + std::to_string(graph_->num_vertices()) +
           "|e=" + std::to_string(graph_->num_edges());
  }

  /// Serializes the barrier state (see Run's checkpoint call site) and
  /// atomically replaces <checkpoint_dir>/checkpoint.bin.
  Status WriteCheckpoint(VertexProgram<V, M>& program, Superstep next_step)
    requires(recovery::Checkpointable<V> && recovery::Checkpointable<M>)
  {
    BinaryWriter body;
    body.WriteString(FingerprintString());
    body.WriteI64(next_step);
    body.WriteU64(values_.size());
    {
      // Block windows instead of a flat iteration: works identically for
      // paged vertex state, so checkpoints restore across storage modes
      // (a flat-run checkpoint resumes a paged run and vice versa — the
      // bytes are the same).
      const VertexId n = static_cast<VertexId>(values_.size());
      constexpr VertexId kBlock = 1 << 16;
      for (VertexId b = 0; b < n; b += kBlock) {
        const VertexId last = std::min<VertexId>(b + kBlock, n) - 1;
        auto window = values_.AcquireWindow(b, last);
        for (VertexId v = b; v <= last; ++v) {
          recovery::CheckpointTraits<V>::Write(body, window.at(v));
        }
      }
      ARIADNE_RETURN_NOT_OK(values_.error());
    }
    body.WriteString(std::string(halted_.begin(), halted_.end()));
    for (const auto& box : inbox_) {
      body.WriteU64(box.size());
      for (const M& m : box) {
        recovery::CheckpointTraits<M>::Write(body, m);
      }
    }
    aggregators_.Serialize(body);
    BinaryWriter program_state;
    ARIADNE_RETURN_NOT_OK(program.SaveCheckpointState(
        program_state, CheckpointIo{options_.checkpoint_dir}));
    body.WriteString(program_state.MoveData());
    return recovery::WriteCheckpointFile(options_.checkpoint_dir,
                                         body.MoveData());
  }

  /// Restores the barrier state from <checkpoint_dir>/checkpoint.bin and
  /// returns the superstep to start at. NotFound when no checkpoint
  /// exists; ParseError/InvalidArgument (naming the mismatch) otherwise —
  /// never a silent wrong resume.
  Result<Superstep> ResumeFromCheckpoint(VertexProgram<V, M>& program)
    requires(recovery::Checkpointable<V> && recovery::Checkpointable<M>)
  {
    const std::string path =
        recovery::CheckpointPath(options_.checkpoint_dir);
    ARIADNE_ASSIGN_OR_RETURN(
        BinaryReader r, recovery::OpenCheckpointFile(options_.checkpoint_dir));
    ARIADNE_ASSIGN_OR_RETURN(std::string fingerprint, r.ReadString());
    if (fingerprint != FingerprintString()) {
      return Status::InvalidArgument(
          "checkpoint fingerprint mismatch in " + path + ": checkpoint is "
          "for '" + fingerprint + "' but this run is '" +
          FingerprintString() + "'");
    }
    ARIADNE_ASSIGN_OR_RETURN(int64_t next_step, r.ReadI64());
    if (next_step <= 0 || next_step > options_.max_supersteps) {
      return Status::ParseError("checkpoint superstep " +
                                std::to_string(next_step) +
                                " out of range in " + path);
    }
    ARIADNE_ASSIGN_OR_RETURN(uint64_t n, r.ReadU64());
    if (n != values_.size()) {
      return Status::ParseError(
          "checkpoint vertex count " + std::to_string(n) + " != graph " +
          std::to_string(values_.size()) + " in " + path);
    }
    {
      const VertexId vn = static_cast<VertexId>(n);
      constexpr VertexId kBlock = 1 << 16;
      for (VertexId b = 0; b < vn; b += kBlock) {
        const VertexId last = std::min<VertexId>(b + kBlock, vn) - 1;
        auto window = values_.AcquireWindow(b, last);
        for (VertexId v = b; v <= last; ++v) {
          ARIADNE_ASSIGN_OR_RETURN(window.at(v),
                                   recovery::CheckpointTraits<V>::Read(r));
        }
      }
      ARIADNE_RETURN_NOT_OK(values_.error());
    }
    ARIADNE_ASSIGN_OR_RETURN(std::string halted, r.ReadString());
    if (halted.size() != n) {
      return Status::ParseError("checkpoint halted bitmap has " +
                                std::to_string(halted.size()) +
                                " entries, want " + std::to_string(n) +
                                " in " + path);
    }
    std::copy(halted.begin(), halted.end(), halted_.begin());
    for (size_t i = 0; i < n; ++i) {
      ARIADNE_ASSIGN_OR_RETURN(uint64_t count, r.ReadU64());
      if (count > r.remaining()) {
        return Status::ParseError(
            "checkpoint inbox length " + std::to_string(count) +
            " exceeds remaining bytes at offset " + std::to_string(r.pos()) +
            " in " + path);
      }
      auto& box = inbox_[i];
      box.clear();
      box.reserve(count);
      for (uint64_t k = 0; k < count; ++k) {
        ARIADNE_ASSIGN_OR_RETURN(M m, recovery::CheckpointTraits<M>::Read(r));
        box.push_back(std::move(m));
      }
    }
    {
      Status agg = aggregators_.Deserialize(r);
      if (!agg.ok()) return agg.WithContext("reading " + path);
    }
    ARIADNE_ASSIGN_OR_RETURN(std::string program_state, r.ReadString());
    if (!r.AtEnd()) {
      return Status::ParseError(
          "trailing bytes after checkpoint body at offset " +
          std::to_string(r.pos()) + " in " + path);
    }
    BinaryReader program_reader(std::move(program_state));
    {
      Status loaded = program.LoadCheckpointState(
          program_reader, CheckpointIo{options_.checkpoint_dir});
      if (!loaded.ok()) {
        return loaded.WithContext("restoring program state from " + path);
      }
    }
    return static_cast<Superstep>(next_step);
  }

  bool HasPendingWork() {
    const size_t un = static_cast<size_t>(graph_->num_vertices());
    return pool_.ParallelReduce(
        un, size_t{4096}, false,
        [&](size_t begin, size_t end) {
          for (size_t v = begin; v < end; ++v) {
            if (!halted_[v] || !inbox_[v].empty()) return true;
          }
          return false;
        },
        [](bool a, bool b) { return a || b; });
  }

  const Graph* graph_;
  EngineOptions options_;
  ThreadPool pool_;
  size_t num_shards_ = 1;
  /// Vertex values — flat vector or paged store (EngineOptions::
  /// paged_vertex_state). All access goes through chunk windows.
  VertexState<V> values_;
  /// Graph or values are behind a buffer manager this run: drive the
  /// prefetchers and check the sticky backend errors at barriers.
  bool ooc_ = false;
  std::vector<uint8_t> halted_;
  std::vector<std::vector<M>> inbox_;
  std::vector<std::vector<M>> next_inbox_;
  std::vector<VertexId> active_;
  std::vector<size_t> rebuild_offsets_;
  std::vector<ShardedOutbox> outboxes_;
  std::vector<int64_t> chunk_sent_, chunk_dropped_, chunk_combined_;
  std::vector<int64_t> shard_combined_;
  std::vector<CombineScratch> scratch_;
  std::vector<std::vector<std::pair<std::string, double>>> agg_buffers_;
  AggregatorRegistry aggregators_;
};

}  // namespace ariadne

#endif  // ARIADNE_ENGINE_ENGINE_H_
