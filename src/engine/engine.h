#ifndef ARIADNE_ENGINE_ENGINE_H_
#define ARIADNE_ENGINE_ENGINE_H_

#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "engine/aggregators.h"
#include "engine/types.h"
#include "engine/vertex_program.h"
#include "graph/graph.h"

namespace ariadne {

/// Bulk-Synchronous-Parallel vertex-centric engine (the Giraph stand-in,
/// see DESIGN.md §2). Loads the whole graph in memory, runs supersteps
/// with a global barrier, delivers messages between supersteps, and stops
/// when every vertex has voted to halt and no messages are in flight (or
/// at max_supersteps).
///
/// The engine is provenance-agnostic: capture and online query evaluation
/// are ordinary `VertexProgram`s wrapping the analytic (src/provenance,
/// src/eval), exactly as the paper requires ("without modifying the graph
/// processing engine itself").
template <typename V, typename M>
class Engine {
 public:
  /// `graph` must outlive the engine.
  explicit Engine(const Graph* graph, EngineOptions options = {})
      : graph_(graph),
        options_(options),
        pool_(options.num_threads) {}

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs `program` to quiescence (or the superstep cap). The program must
  /// outlive the call. Vertex values are readable afterwards via values().
  Result<RunStats> Run(VertexProgram<V, M>& program) {
    const VertexId n = graph_->num_vertices();
    if (n == 0) return Status::InvalidArgument("empty graph");
    if (options_.max_supersteps < 0) {
      return Status::InvalidArgument("max_supersteps must be >= 0");
    }

    values_.clear();
    values_.reserve(static_cast<size_t>(n));
    for (VertexId v = 0; v < n; ++v) {
      values_.push_back(program.InitialValue(v, *graph_));
    }
    halted_.assign(static_cast<size_t>(n), 0);
    inbox_.assign(static_cast<size_t>(n), {});
    next_inbox_.assign(static_cast<size_t>(n), {});
    aggregators_.Reset();
    program.RegisterAggregators(aggregators_);
    const MessageCombiner<M>* combiner = program.combiner();

    RunStats stats;
    WallTimer run_timer;
    for (Superstep step = 0; step < options_.max_supersteps; ++step) {
      WallTimer step_timer;

      // A vertex computes iff it has not voted to halt or received mail.
      active_.clear();
      for (VertexId v = 0; v < n; ++v) {
        if (!halted_[static_cast<size_t>(v)] ||
            !inbox_[static_cast<size_t>(v)].empty()) {
          active_.push_back(v);
        }
      }
      if (active_.empty()) break;

      int64_t messages_this_step = 0;
      {
        std::mutex merge_mu;
        pool_.ParallelFor(active_.size(), [&](size_t begin, size_t end) {
          Ctx ctx(this, step);
          std::vector<std::pair<VertexId, M>> outbox;
          for (size_t i = begin; i < end; ++i) {
            const VertexId v = active_[i];
            ctx.Reset(v, &outbox);
            halted_[static_cast<size_t>(v)] = 0;
            auto& mail = inbox_[static_cast<size_t>(v)];
            program.Compute(ctx, std::span<const M>(mail.data(), mail.size()));
            if (ctx.voted_halt()) halted_[static_cast<size_t>(v)] = 1;
            mail.clear();
          }
          std::lock_guard<std::mutex> lock(merge_mu);
          messages_this_step += static_cast<int64_t>(outbox.size());
          for (auto& [target, msg] : outbox) {
            DeliverLocked(target, std::move(msg), combiner);
          }
        });
      }

      aggregators_.EndSuperstep();
      MasterContext master;
      master.superstep = step;
      master.aggregators = &aggregators_;
      program.MasterCompute(master);

      stats.supersteps = step + 1;
      stats.total_messages += messages_this_step;
      stats.total_active += static_cast<int64_t>(active_.size());
      if (options_.collect_per_step_stats) {
        stats.steps.push_back(SuperstepStats{
            step, static_cast<int64_t>(active_.size()), messages_this_step,
            step_timer.ElapsedSeconds()});
      }

      std::swap(inbox_, next_inbox_);
      if (master.halt) break;
    }
    stats.halted_by_cap = stats.supersteps == options_.max_supersteps &&
                          HasPendingWork();
    stats.seconds = run_timer.ElapsedSeconds();
    return stats;
  }

  std::span<const V> values() const { return values_; }
  const V& value(VertexId v) const { return values_[static_cast<size_t>(v)]; }
  const Graph& graph() const { return *graph_; }

 private:
  /// Concrete context handed to Compute; reset per vertex within a chunk.
  class Ctx final : public VertexContext<V, M> {
   public:
    Ctx(Engine* engine, Superstep step) : engine_(engine), step_(step) {}

    void Reset(VertexId v, std::vector<std::pair<VertexId, M>>* outbox) {
      vertex_ = v;
      outbox_ = outbox;
      voted_halt_ = false;
    }
    bool voted_halt() const { return voted_halt_; }

    VertexId id() const override { return vertex_; }
    Superstep superstep() const override { return step_; }
    const Graph& graph() const override { return *engine_->graph_; }
    const V& value() const override {
      return engine_->values_[static_cast<size_t>(vertex_)];
    }
    void SetValue(V value) override {
      engine_->values_[static_cast<size_t>(vertex_)] = std::move(value);
    }
    void SendMessage(VertexId target, M message) override {
      outbox_->emplace_back(target, std::move(message));
    }
    void VoteToHalt() override { voted_halt_ = true; }
    void AggregateDouble(const std::string& name, double v) override {
      engine_->aggregators_.Accumulate(name, v);
    }
    double GetAggregate(const std::string& name) const override {
      return engine_->aggregators_.Get(name);
    }

   private:
    Engine* engine_;
    Superstep step_;
    VertexId vertex_ = 0;
    std::vector<std::pair<VertexId, M>>* outbox_ = nullptr;
    bool voted_halt_ = false;
  };

  void DeliverLocked(VertexId target, M msg,
                     const MessageCombiner<M>* combiner) {
    // Out-of-range targets are dropped, mirroring Giraph's behaviour for
    // messages to non-existent vertex ids.
    if (target < 0 || target >= graph_->num_vertices()) return;
    auto& box = next_inbox_[static_cast<size_t>(target)];
    if (combiner != nullptr && !box.empty()) {
      box[0] = combiner->Combine(box[0], msg);
    } else {
      box.push_back(std::move(msg));
    }
  }

  bool HasPendingWork() const {
    for (VertexId v = 0; v < graph_->num_vertices(); ++v) {
      if (!halted_[static_cast<size_t>(v)] ||
          !inbox_[static_cast<size_t>(v)].empty()) {
        return true;
      }
    }
    return false;
  }

  const Graph* graph_;
  EngineOptions options_;
  ThreadPool pool_;
  std::vector<V> values_;
  std::vector<uint8_t> halted_;
  std::vector<std::vector<M>> inbox_;
  std::vector<std::vector<M>> next_inbox_;
  std::vector<VertexId> active_;
  AggregatorRegistry aggregators_;
};

}  // namespace ariadne

#endif  // ARIADNE_ENGINE_ENGINE_H_
