#ifndef ARIADNE_ENGINE_AGGREGATORS_H_
#define ARIADNE_ENGINE_AGGREGATORS_H_

#include <mutex>
#include <string>
#include <unordered_map>

#include "common/serialize.h"
#include "common/status.h"
#include "engine/types.h"

namespace ariadne {

/// Commutative/associative fold applied to doubles aggregated by vertices.
enum class AggregateOp { kSum, kMin, kMax };

/// Pregel-style global aggregators over doubles. Values accumulated during
/// superstep s become readable (Get) during superstep s+1 and in
/// MasterCompute after s. Thread-safe for concurrent Accumulate.
class AggregatorRegistry {
 public:
  /// Registers an aggregator; re-registering the same name resets it.
  void Register(const std::string& name, AggregateOp op);

  /// Drops all aggregators (called by the engine at the start of a run).
  void Reset();

  bool Has(const std::string& name) const;

  /// Folds `v` into the current superstep's accumulation.
  /// Precondition: `name` is registered (CHECK otherwise).
  void Accumulate(const std::string& name, double v);

  /// Value finalized at the end of the previous superstep (identity of the
  /// fold if nothing was accumulated: 0 for sum, +/-inf for min/max).
  double Get(const std::string& name) const;

  /// Superstep barrier: publishes current accumulations and resets them.
  void EndSuperstep();

  /// Checkpoint support: writes every slot (sorted by name, so the bytes
  /// are deterministic) and restores them. Deserialize replaces the whole
  /// slot table — the program re-registers on resume, then restoration
  /// overwrites the fresh identities with the checkpointed values.
  void Serialize(BinaryWriter& w) const;
  Status Deserialize(BinaryReader& r);

 private:
  struct Slot {
    AggregateOp op;
    double current;
    double previous;
  };
  static double Identity(AggregateOp op);

  mutable std::mutex mu_;
  std::unordered_map<std::string, Slot> slots_;
};

/// Passed to VertexProgram::MasterCompute after each superstep barrier
/// (Giraph's MasterCompute hook). `aggregators->Get` returns the values
/// accumulated during the superstep that just completed.
struct MasterContext {
  Superstep superstep = 0;  ///< the just-completed superstep
  const AggregatorRegistry* aggregators = nullptr;
  bool halt = false;  ///< set true to stop the whole computation
};

}  // namespace ariadne

#endif  // ARIADNE_ENGINE_AGGREGATORS_H_
