#ifndef ARIADNE_ENGINE_VERTEX_STATE_H_
#define ARIADNE_ENGINE_VERTEX_STATE_H_

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <span>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <unordered_set>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "engine/types.h"
#include "recovery/fault_injector.h"
#include "storage/page.h"

namespace ariadne {

/// Vertex-value store of the engine (DESIGN.md §2.7). Flat mode (the
/// default) is a plain std::vector<V> with zero overhead. Paged mode cuts
/// the value array into fixed, power-of-two-sized pages kept under a byte
/// budget: cold pages spill to a checksummed scratch file (record =
/// [page bytes][Checksum64]) with dirty write-back, and fault back in on
/// access. Requires a trivially-copyable V (records are raw memcpy);
/// ConfigurePaged refuses otherwise and the store stays flat.
///
/// Access goes through `Window`s: a window pins the pages covering a
/// contiguous vertex range, hands out V& into them, and unpins on
/// destruction. The engine acquires one window per compute chunk — chunk
/// vertex ranges are contiguous (ascending active list), so a window is
/// a handful of pages. Pinned pages are never evicted; concurrent windows
/// over boundary pages share them via the pin count. Residency never
/// affects stored values, so paged runs are byte-identical to flat ones
/// for any budget or thread count (graph_backend_test.cc).
///
/// A background prefetcher mirrors the paged graph backend: PrefetchRange
/// hints fault upcoming pages in asynchronously so chunk windows almost
/// never block on the spill file. IO failures are sticky (error());
/// windows then serve a zeroed scratch page and the engine fails the run
/// at the next superstep barrier.
template <typename V>
class VertexState {
 public:
  VertexState() = default;
  ~VertexState() { Close(); }
  VertexState(const VertexState&) = delete;
  VertexState& operator=(const VertexState&) = delete;

  /// Switches to paged mode before the next Reset. The spill file lives
  /// at `spill_path` (scratch; created on Reset, removed on Close).
  Status ConfigurePaged(std::string spill_path, size_t budget_bytes) {
    if constexpr (!std::is_trivially_copyable_v<V>) {
      return Status::Unsupported(
          "paged vertex state requires a trivially-copyable vertex value "
          "type");
    }
    if (spill_path.empty()) {
      return Status::InvalidArgument("paged vertex state needs a spill path");
    }
    paged_ = true;
    spill_path_ = std::move(spill_path);
    budget_bytes_ = budget_bytes;
    return Status::OK();
  }

  /// Transient-I/O retry ladder of the paged read/write-back path
  /// (DESIGN.md §2.8); call before Reset.
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }

  bool paged() const { return paged_; }
  size_t size() const { return n_; }

  /// (Re)initializes to `n` value-initialized slots.
  Status Reset(size_t n) {
    n_ = n;
    if (!paged_) {
      flat_.assign(n, V{});
      return Status::OK();
    }
    Close();
    paged_ = true;  // Close() resets the flag for the flat fallback
    values_per_page_ = PickValuesPerPage();
    page_shift_ = 0;
    while ((size_t{1} << page_shift_) < values_per_page_) ++page_shift_;
    const size_t num_pages =
        n == 0 ? 0 : (n + values_per_page_ - 1) / values_per_page_;
    pages_ = std::vector<PageSlot>(num_pages);
    scratch_.assign(values_per_page_, V{});
    resident_bytes_ = 0;
    stats_ = VertexStateStats{};
    stats_.paged = true;
    stats_.budget_bytes = budget_bytes_;
    stats_.footprint_bytes = static_cast<uint64_t>(n) * sizeof(V);
    stats_.pages = static_cast<int32_t>(num_pages);
    error_ = Status::OK();
    fd_ = ::open(spill_path_.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (fd_ < 0) {
      return Status::IOError("cannot create vertex-state spill file " +
                             spill_path_ + ": " + std::strerror(errno));
    }
    prefetch_stop_ = false;
    prefetcher_ = std::thread([this] { PrefetcherMain(); });
    return Status::OK();
  }

  /// Sticky IO/corruption error of the paged read/write path; the engine
  /// checks this at every superstep barrier.
  Status error() const {
    if (!paged_) return Status::OK();
    std::lock_guard<std::mutex> lock(mu_);
    return error_;
  }

  VertexStateStats stats() const {
    if (!paged_) {
      VertexStateStats s;
      s.footprint_bytes = static_cast<uint64_t>(n_) * sizeof(V);
      s.resident_bytes = s.footprint_bytes;
      return s;
    }
    std::lock_guard<std::mutex> lock(mu_);
    VertexStateStats s = stats_;
    s.resident_bytes = resident_bytes_;
    return s;
  }

  /// A pinned view over vertices [first, last]. Windows are cheap in flat
  /// mode (a bare pointer); in paged mode acquisition faults + pins the
  /// covering pages and destruction unpins them.
  class Window {
   public:
    Window() = default;
    Window(Window&& other) noexcept { *this = std::move(other); }
    Window& operator=(Window&& other) noexcept {
      Release();
      owner_ = other.owner_;
      flat_base_ = other.flat_base_;
      first_page_ = other.first_page_;
      page_ptrs_ = std::move(other.page_ptrs_);
      other.owner_ = nullptr;
      other.flat_base_ = nullptr;
      other.page_ptrs_.clear();
      return *this;
    }
    Window(const Window&) = delete;
    Window& operator=(const Window&) = delete;
    ~Window() { Release(); }

    V& at(VertexId v) {
      if (flat_base_ != nullptr) return flat_base_[static_cast<size_t>(v)];
      return page_ptrs_[(static_cast<size_t>(v) >> owner_->page_shift_) -
                        first_page_]
                       [static_cast<size_t>(v) &
                        (owner_->values_per_page_ - 1)];
    }
    const V& at(VertexId v) const {
      return const_cast<Window*>(this)->at(v);
    }

   private:
    friend class VertexState;
    void Release() {
      if (owner_ != nullptr && !page_ptrs_.empty()) {
        owner_->UnpinRange(first_page_, page_ptrs_.size());
      }
      owner_ = nullptr;
      flat_base_ = nullptr;
      page_ptrs_.clear();
    }
    VertexState* owner_ = nullptr;
    V* flat_base_ = nullptr;      // flat fast path; null in paged mode
    size_t first_page_ = 0;
    std::vector<V*> page_ptrs_;  // pinned pages covering the range
  };

  /// Pins [first, last] (inclusive; clamped to the vertex count).
  /// Mutable-window acquisition marks the pages dirty — cheaper than
  /// tracking per-write dirtiness, and chunk windows write anyway.
  Window AcquireWindow(VertexId first, VertexId last) {
    Window w;
    w.owner_ = this;
    if (!paged_) {
      w.flat_base_ = flat_.data();
      return w;
    }
    if (first < 0) first = 0;
    if (last >= static_cast<VertexId>(n_)) {
      last = static_cast<VertexId>(n_) - 1;
    }
    if (first > last) return w;
    const size_t p0 = static_cast<size_t>(first) >> page_shift_;
    const size_t p1 = static_cast<size_t>(last) >> page_shift_;
    w.first_page_ = p0;
    w.page_ptrs_.resize(p1 - p0 + 1);
    std::unique_lock<std::mutex> lock(mu_);
    for (size_t p = p0; p <= p1; ++p) {
      w.page_ptrs_[p - p0] = PinPageLocked(lock, p, /*mark_dirty=*/true);
    }
    return w;
  }

  /// Async hint that vertices [first, last] are about to be accessed.
  void PrefetchRange(VertexId first, VertexId last) {
    if (!paged_ || first > last) return;
    if (first < 0) first = 0;
    if (last >= static_cast<VertexId>(n_)) {
      last = static_cast<VertexId>(n_) - 1;
    }
    const size_t p0 = static_cast<size_t>(first) >> page_shift_;
    const size_t p1 = static_cast<size_t>(last) >> page_shift_;
    bool queued = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t p = p0; p <= p1 && p < pages_.size(); ++p) {
        if (pages_[p].data == nullptr && loading_.count(p) == 0) {
          ++stats_.prefetch_loads;  // adjusted down if the load is beaten
          prefetch_queue_.push_back(p);
          queued = true;
        }
      }
    }
    if (queued) prefetch_cv_.notify_one();
  }

  /// Copies every value into `out` (the session/tool result path, which
  /// works in both modes — Engine::values() only works flat).
  Status CopyTo(std::vector<V>* out) {
    out->resize(n_);
    if (!paged_) {
      std::copy(flat_.begin(), flat_.end(), out->begin());
      return Status::OK();
    }
    constexpr VertexId kBlock = 1 << 16;
    for (VertexId b = 0; b < static_cast<VertexId>(n_); b += kBlock) {
      const VertexId e =
          std::min<VertexId>(b + kBlock, static_cast<VertexId>(n_)) - 1;
      Window w = AcquireWindow(b, e);
      for (VertexId v = b; v <= e; ++v) {
        (*out)[static_cast<size_t>(v)] = w.at(v);
      }
    }
    return error();
  }

  /// Flat-mode-only direct span (Engine::values()).
  std::span<const V> flat_span() const {
    if (paged_) return {};
    return {flat_.data(), flat_.size()};
  }

 private:
  struct PageSlot {
    std::unique_ptr<V[]> data;  // resident iff non-null
    uint32_t pins = 0;
    bool dirty = false;
    bool on_disk = false;  // a record exists in the spill file
    bool in_lru = false;
    std::list<size_t>::iterator lru_it;  // valid iff in_lru
  };

  static size_t PickValuesPerPage() {
    // ~64 KiB pages, power-of-two values per page (so v>>shift / v&mask
    // replace div/mod on the window hot path).
    size_t vp = 1;
    while (vp * sizeof(V) < size_t{64} * 1024) vp <<= 1;
    return vp;
  }

  size_t PageBytes() const { return values_per_page_ * sizeof(V); }
  uint64_t RecordOffset(size_t p) const {
    return static_cast<uint64_t>(p) * (PageBytes() + 8);
  }

  /// Faults (if needed), pins and LRU-touches page `p`. Requires `lock`
  /// held; may drop it during IO (pages being loaded are tracked in
  /// loading_, and waiters block on load_done_). Returns the page array,
  /// or the shared zero scratch page after a sticky IO error.
  V* PinPageLocked(std::unique_lock<std::mutex>& lock, size_t p,
                   bool mark_dirty) {
    for (;;) {
      PageSlot& slot = pages_[p];
      if (slot.data != nullptr) {
        if (slot.pins++ == 0 && slot.in_lru) {
          lru_.erase(slot.lru_it);
          slot.in_lru = false;
        }
        if (mark_dirty) slot.dirty = true;
        return slot.data.get();
      }
      if (!error_.ok()) return scratch_.data();
      if (loading_.count(p) == 0) break;
      load_done_.wait(lock);
    }
    loading_.insert(p);
    const bool from_disk = pages_[p].on_disk;
    lock.unlock();
    std::unique_ptr<V[]> data;
    int retries = 0;
    Status load = LoadPage(p, from_disk, &data, &retries);
    bool reopened = false;
    if (!load.ok() && IsTransientError(load)) {
      // Retries exhausted on a transient error: one reopen-and-revalidate
      // of the spill fd before the error goes sticky (DESIGN.md §2.8).
      if (ReopenSpill().ok()) {
        reopened = true;
        load = LoadPage(p, from_disk, &data, &retries);
      }
    }
    lock.lock();
    loading_.erase(p);
    stats_.read_retries += static_cast<uint64_t>(retries);
    if (reopened) ++stats_.fd_reopens;
    PageSlot& slot = pages_[p];
    if (!load.ok()) {
      ++stats_.gave_up;
      if (error_.ok()) error_ = load;
      load_done_.notify_all();
      return scratch_.data();
    }
    slot.data = std::move(data);
    slot.pins = 1;
    slot.dirty = mark_dirty || !from_disk;
    resident_bytes_ += PageBytes();
    if (from_disk) ++stats_.page_faults;
    EvictOverBudgetLocked();
    load_done_.notify_all();
    return slot.data.get();
  }

  /// Reads page `p` from the spill file (or value-initializes a page that
  /// was never written), retrying transient errors (fault point
  /// "vstate-page-read") per retry_. No lock held; `*retries` accumulates
  /// attempts beyond the first for the caller to fold into stats_.
  Status LoadPage(size_t p, bool from_disk, std::unique_ptr<V[]>* out,
                  int* retries) {
    auto data = std::make_unique<V[]>(values_per_page_);
    if (from_disk) {
      const RetryOutcome read = RetryTransient(retry_, p, [&] {
        Status attempt = recovery::CheckFaultPoint("vstate-page-read");
        if (attempt.ok()) attempt = ReadRecordOnce(p, data.get());
        return attempt;
      });
      *retries += read.retries();
      ARIADNE_RETURN_NOT_OK(read.status);
    }
    *out = std::move(data);
    return Status::OK();
  }

  /// One pread+checksum attempt of page `p`'s spill record.
  Status ReadRecordOnce(size_t p, V* data) {
    const size_t rec = PageBytes() + 8;
    std::string raw(rec, '\0');
    size_t got = 0;
    while (got < rec) {
      const ssize_t r =
          ::pread(fd_, raw.data() + got, rec - got, RecordOffset(p) + got);
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("pread failed on vertex-state spill " +
                               spill_path_ + ": " + std::strerror(errno));
      }
      if (r == 0) {
        return Status::IOError("vertex-state spill truncated at page " +
                               std::to_string(p) + " in " + spill_path_);
      }
      got += static_cast<size_t>(r);
    }
    uint64_t want;
    std::memcpy(&want, raw.data() + PageBytes(), 8);
    if (storage::Checksum64({raw.data(), PageBytes()}) != want) {
      return Status::ParseError("vertex-state page " + std::to_string(p) +
                                " checksum mismatch in " + spill_path_);
    }
    std::memcpy(data, raw.data(), PageBytes());
    return Status::OK();
  }

  /// Writes page `p` (dirty write-back), retrying transient errors (fault
  /// point "vstate-page-write") per retry_. Called with mu_ held from the
  /// eviction path; the page has pins == 0, so nothing mutates it. Doing
  /// the write (and any backoff) under the lock serializes write-back
  /// against faults — acceptable because eviction happens off the chunk
  /// hot path (window release) and pages are small.
  Status StorePage(size_t p, const V* data) {
    std::string raw(PageBytes() + 8, '\0');
    std::memcpy(raw.data(), data, PageBytes());
    const uint64_t sum = storage::Checksum64({raw.data(), PageBytes()});
    std::memcpy(raw.data() + PageBytes(), &sum, 8);
    const RetryOutcome wrote = RetryTransient(retry_, p, [&] {
      Status attempt = recovery::CheckFaultPoint("vstate-page-write");
      if (attempt.ok()) attempt = WriteRecordOnce(p, raw);
      return attempt;
    });
    stats_.write_retries += static_cast<uint64_t>(wrote.retries());
    return wrote.status;
  }

  /// One pwrite attempt of page `p`'s spill record.
  Status WriteRecordOnce(size_t p, const std::string& raw) {
    size_t put = 0;
    while (put < raw.size()) {
      const ssize_t w = ::pwrite(fd_, raw.data() + put, raw.size() - put,
                                 RecordOffset(p) + put);
      if (w < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("pwrite failed on vertex-state spill " +
                               spill_path_ + ": " + std::strerror(errno));
      }
      put += static_cast<size_t>(w);
    }
    return Status::OK();
  }

  /// Last-ditch recovery before an error goes sticky: reopens the spill
  /// file and retargets fd_ via dup2 (atomic for concurrent preads).
  /// Validates the new descriptor with fstat — the scratch file has no
  /// magic; its records are individually checksummed anyway.
  Status ReopenSpill() {
    std::lock_guard<std::mutex> lock(reopen_mu_);
    const int fd = ::open(spill_path_.c_str(), O_RDWR);
    if (fd < 0) {
      return Status::IOError("reopen failed for vertex-state spill " +
                             spill_path_ + ": " + std::strerror(errno));
    }
    struct stat st;
    if (::fstat(fd, &st) != 0 || ::dup2(fd, fd_) < 0) {
      const Status failed =
          Status::IOError("revalidating reopened vertex-state spill " +
                          spill_path_ + ": " + std::strerror(errno));
      ::close(fd);
      return failed;
    }
    ::close(fd);
    return Status::OK();
  }

  /// Evicts cold unpinned pages until under budget (soft: pinned pages
  /// can hold residency above budget). Requires mu_ held.
  void EvictOverBudgetLocked() {
    auto it = lru_.begin();
    while (resident_bytes_ > budget_bytes_ && it != lru_.end()) {
      const size_t p = *it;
      PageSlot& slot = pages_[p];
      if (slot.dirty) {
        Status stored = StorePage(p, slot.data.get());
        if (!stored.ok() && IsTransientError(stored) && ReopenSpill().ok()) {
          ++stats_.fd_reopens;
          stored = StorePage(p, slot.data.get());
        }
        if (!stored.ok()) {
          ++stats_.gave_up;
          if (error_.ok()) error_ = stored;
          return;  // keep the page; the barrier check surfaces the error
        }
        slot.dirty = false;
        slot.on_disk = true;
        ++stats_.writebacks;
      }
      slot.data.reset();
      resident_bytes_ -= PageBytes();
      ++stats_.evictions;
      it = lru_.erase(it);
      slot.in_lru = false;
    }
  }

  void UnpinRange(size_t first_page, size_t count) {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t p = first_page; p < first_page + count; ++p) {
      PageSlot& slot = pages_[p];
      if (--slot.pins == 0 && !slot.in_lru) {
        slot.lru_it = lru_.insert(lru_.end(), p);
        slot.in_lru = true;
      }
    }
    if (resident_bytes_ > budget_bytes_) EvictOverBudgetLocked();
  }

  void PrefetcherMain() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      prefetch_cv_.wait(lock, [this] {
        return prefetch_stop_ || !prefetch_queue_.empty();
      });
      if (prefetch_stop_) return;
      const size_t p = prefetch_queue_.front();
      prefetch_queue_.pop_front();
      if (pages_[p].data != nullptr || loading_.count(p) > 0 ||
          !error_.ok()) {
        --stats_.prefetch_loads;  // someone else got there first
        continue;
      }
      // Pin + unpin so the prefetched page enters the LRU as warmest.
      V* data = PinPageLocked(lock, p, /*mark_dirty=*/false);
      if (data != scratch_.data()) {
        PageSlot& slot = pages_[p];
        if (--slot.pins == 0 && !slot.in_lru) {
          slot.lru_it = lru_.insert(lru_.end(), p);
          slot.in_lru = true;
        }
      }
    }
  }

  void Close() {
    if (!paged_) return;
    if (prefetcher_.joinable()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        prefetch_stop_ = true;
      }
      prefetch_cv_.notify_all();
      prefetcher_.join();
    }
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
      std::remove(spill_path_.c_str());
    }
    pages_.clear();
    lru_.clear();
    loading_.clear();
    prefetch_queue_.clear();
    paged_ = false;
  }

  size_t n_ = 0;
  std::vector<V> flat_;

  // Paged-mode state (all guarded by mu_ unless noted).
  bool paged_ = false;
  std::string spill_path_;
  size_t budget_bytes_ = 0;
  size_t values_per_page_ = 0;  // power of two; set by Reset
  size_t page_shift_ = 0;
  int fd_ = -1;
  RetryPolicy retry_;
  /// Serializes ReopenSpill so concurrently failing pages don't race
  /// dup2 swaps of fd_.
  std::mutex reopen_mu_;
  mutable std::mutex mu_;
  mutable std::condition_variable load_done_;
  std::condition_variable prefetch_cv_;
  std::vector<PageSlot> pages_;
  std::list<size_t> lru_;  // unpinned resident pages, front = coldest
  std::unordered_set<size_t> loading_;
  std::deque<size_t> prefetch_queue_;
  bool prefetch_stop_ = false;
  std::thread prefetcher_;
  size_t resident_bytes_ = 0;
  Status error_ = Status::OK();
  VertexStateStats stats_;
  /// Served to windows after a sticky error (values are garbage by then;
  /// the run fails at the barrier before anything is reported).
  std::vector<V> scratch_;
};

}  // namespace ariadne

#endif  // ARIADNE_ENGINE_VERTEX_STATE_H_
