// Input auditing with an always-on online query (paper §6.2.1, Query 7):
// while ALS trains on a ratings matrix, the range-audit query attributes
// out-of-range behaviour to either the input file (a corrupt rating) or
// the algorithm (a prediction outside the rating range) — per edge, per
// superstep, with no capture step.

#include <cstdio>
#include <set>

#include "core/ariadne.h"

using namespace ariadne;

int main() {
  // Synthetic ratings in [0, 5] ... with a few corrupted entries, as if a
  // malformed import slipped through.
  auto ratings = GenerateBipartiteRatings({.num_users = 400,
                                           .num_items = 120,
                                           .ratings_per_user = 25,
                                           .seed = 19});
  if (!ratings.ok()) return 1;

  GraphBuilder corrupted;
  corrupted.EnsureVertices(ratings->graph.num_vertices());
  int poisoned = 0;
  for (VertexId v = 0; v < ratings->graph.num_vertices(); ++v) {
    auto nbrs = ratings->graph.OutNeighbors(v);
    auto weights = ratings->graph.OutWeights(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      double w = weights[i];
      // Poison the ratings of user 7 (both edge directions share weights).
      if ((v == 7 || nbrs[i] == 7) && i % 5 == 0) {
        w = 9.5;
        ++poisoned;
      }
      corrupted.AddEdge(v, nbrs[i], w);
    }
  }
  auto graph = corrupted.Build();
  if (!graph.ok()) return 1;
  std::printf("ratings graph: %lld vertices, %lld edges (%d poisoned)\n",
              static_cast<long long>(graph->num_vertices()),
              static_cast<long long>(graph->num_edges()), poisoned);

  Session session(&*graph);
  auto audit = session.PrepareOnline(queries::AlsRangeAudit());
  if (!audit.ok()) {
    std::fprintf(stderr, "%s\n", audit.status().ToString().c_str());
    return 1;
  }

  AlsOptions options;
  options.num_features = 5;
  options.max_iterations = 3;
  options.tolerance = 0;
  AlsProgram als(options, ratings->num_users);
  auto run = session.RunOnline(als, *audit, /*retention_window=*/4);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }
  std::printf("ALS trained; final RMSE %.3f\n", als.last_rmse());

  // input-failed(x, y, i): the rating on edge (x, y) is out of range.
  const Relation* input_failed = run->query_result.Table("input-failed");
  std::set<std::pair<int64_t, int64_t>> bad_edges;
  if (input_failed != nullptr) {
    for (size_t i = 0; i < input_failed->size(); ++i) {
      const Relation::RowView t = input_failed->row_view(i);
      bad_edges.emplace(t.AsInt(0), t.AsInt(1));
    }
  }
  std::printf("audit verdicts:\n");
  std::printf("  input-failed:  %zu distinct edges flagged as corrupt "
              "input\n",
              bad_edges.size());
  std::printf("  algo-failed:   %zu (prediction out of range)\n",
              run->query_result.TupleCount("algo-failed"));
  int shown = 0;
  for (const auto& [x, y] : bad_edges) {
    std::printf("    corrupt rating on edge (%lld, %lld)\n",
                static_cast<long long>(x), static_cast<long long>(y));
    if (++shown >= 6) break;
  }
  std::printf("(user 7's poisoned ratings should dominate the list)\n");
  return 0;
}
