// The paper's motivating scenario (§2.2): Alice uses the apt query to
// decide whether the "only message neighbors on large updates"
// optimization is applicable to her analytic, then applies it.
//
// For PageRank the query finds many safe vertex-steps and no unsafe ones
// — so the optimization is worth doing, and the approximate PageRank
// delivers a real speedup at tiny error. For WCC the same query returns
// an empty safe table: the developer learns *before* shipping a broken
// "optimization" that it cannot work (paper §6.2.2).

#include <cstdio>

#include "analytics/linalg.h"
#include "core/ariadne.h"

using namespace ariadne;

int main() {
  auto graph = GenerateRmat(
      {.scale = 11, .avg_degree = 16, .seed = 3, .max_weight = 2.5});
  if (!graph.ok()) return 1;
  Session session(&*graph);

  // ---- Step 1: ask the apt query about PageRank (online, eps = 0.01).
  auto apt = session.PrepareOnline(queries::Apt(), {{"eps", Value(0.01)}});
  if (!apt.ok()) {
    std::fprintf(stderr, "%s\n", apt.status().ToString().c_str());
    return 1;
  }
  PageRankOptions pr_options{.iterations = 20};
  PageRankProgram pagerank(pr_options);
  std::vector<double> exact_ranks;
  auto run = session.RunOnline(pagerank, *apt, /*retention_window=*/2,
                               &exact_ranks);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }
  const size_t safe = run->query_result.TupleCount("safe");
  const size_t unsafe = run->query_result.TupleCount("unsafe");
  std::printf("apt on PageRank: %zu safe vertex-steps, %zu unsafe\n", safe,
              unsafe);
  if (unsafe == 0 && safe > 0) {
    std::printf("=> the threshold optimization is applicable!\n");
  }

  // ---- Step 2: apply it and measure.
  WallTimer exact_timer;
  PageRankProgram exact(pr_options);
  Engine<double, double> exact_engine(&*graph);
  (void)exact_engine.Run(exact);
  const double exact_seconds = exact_timer.ElapsedSeconds();

  WallTimer approx_timer;
  ApproxPageRankProgram approx(pr_options, /*epsilon=*/0.01);
  Engine<ApproxPageRankState, double> approx_engine(&*graph);
  (void)approx_engine.Run(approx);
  const double approx_seconds = approx_timer.ElapsedSeconds();

  std::vector<double> baseline(exact_engine.values().begin(),
                               exact_engine.values().end());
  std::vector<double> optimized;
  for (const auto& s : approx_engine.values()) optimized.push_back(s.rank);
  std::printf("original:  %.3fs\noptimized: %.3fs (%.2fx speedup)\n",
              exact_seconds, approx_seconds, exact_seconds / approx_seconds);
  std::printf("normalized L2 error: %.2e\n",
              RelativeError(baseline, optimized, 2));

  // ---- Step 3: the same query warns against the WCC "optimization".
  auto apt_wcc = session.PrepareOnline(queries::Apt(), {{"eps", Value(1.0)}});
  if (!apt_wcc.ok()) return 1;
  WccProgram wcc;
  auto wcc_run = session.RunOnline(wcc, *apt_wcc, /*retention_window=*/2);
  if (!wcc_run.ok()) return 1;
  const size_t wcc_safe = wcc_run->query_result.TupleCount("safe");
  const size_t wcc_unsafe = wcc_run->query_result.TupleCount("unsafe");
  std::printf("apt on WCC: %zu safe, %zu unsafe", wcc_safe, wcc_unsafe);
  // Any unsafe vertex means skipped executions would corrupt the labels.
  std::printf(" => %s\n", wcc_unsafe > 0
                              ? "do NOT apply the optimization to WCC"
                              : "optimization applicable");
  return 0;
}
