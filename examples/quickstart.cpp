// Quickstart: run an unmodified analytic with an always-on provenance
// query evaluated online (paper Fig 2).
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart
//
// The program builds a small web-like graph, runs PageRank, and evaluates
// the paper's Query 4 in lockstep: "a vertex with no in-edges must never
// receive a message". At the end both the ranks and the query's verdict
// exist — no capture step, no second pass.

#include <cstdio>

#include "core/ariadne.h"

using namespace ariadne;

int main() {
  // 1. An input graph: a seeded R-MAT web-graph stand-in.
  auto graph = GenerateRmat({.scale = 10, .avg_degree = 12, .seed = 7});
  if (!graph.ok()) {
    std::fprintf(stderr, "graph: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("graph: %lld vertices, %lld edges\n",
              static_cast<long long>(graph->num_vertices()),
              static_cast<long long>(graph->num_edges()));

  // 2. A session binds the graph to the PQL front-end.
  Session session(&*graph);

  // 3. Prepare the monitoring query (PQL is plain text; see
  //    src/pql/queries.h for all the paper's queries).
  auto query = session.PrepareOnline(queries::PageRankInDegreeCheck());
  if (!query.ok()) {
    std::fprintf(stderr, "query: %s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("query analysis:\n%s", query->DebugString().c_str());

  // 4. Run the analytic with the query attached. The analytic code is the
  //    stock PageRankProgram — provenance is entirely transparent to it.
  PageRankProgram pagerank({.iterations = 10});
  std::vector<double> ranks;
  auto run = session.RunOnline(pagerank, *query, /*retention_window=*/2,
                               &ranks);
  if (!run.ok()) {
    std::fprintf(stderr, "run: %s\n", run.status().ToString().c_str());
    return 1;
  }

  // 5. Both results exist now.
  double max_rank = 0;
  VertexId top = 0;
  for (size_t v = 0; v < ranks.size(); ++v) {
    if (ranks[v] > max_rank) {
      max_rank = ranks[v];
      top = static_cast<VertexId>(v);
    }
  }
  std::printf("PageRank finished in %d supersteps (%lld messages)\n",
              run->engine_stats.supersteps,
              static_cast<long long>(run->engine_stats.total_messages));
  std::printf("top vertex: %lld with rank %.3f\n",
              static_cast<long long>(top), max_rank);
  std::printf("monitoring verdict: %zu check-failed tuples (expected 0 for "
              "a well-formed analytic)\n",
              run->query_result.TupleCount("check-failed"));
  return 0;
}
