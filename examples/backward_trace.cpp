// Backward lineage tracing (paper §6.3): capture a *custom* provenance
// graph during an SSSP run — values, send supersteps and static edges,
// but no message payloads (Query 11) — and trace an output vertex back to
// the inputs that explain it (Query 12), using descending layered
// evaluation.
//
// This is the classic "crash culprit determination" workflow: which input
// vertices are responsible for this (possibly suspicious) output?

#include <cstdio>

#include "common/string_util.h"
#include "core/ariadne.h"

using namespace ariadne;

int main() {
  auto graph = GenerateRmat(
      {.scale = 10, .avg_degree = 12, .seed = 11, .max_weight = 2.5});
  if (!graph.ok()) return 1;
  Session session(&*graph);
  const VertexId source = HighestDegreeVertex(*graph);

  // ---- Capture with Query 11 (declaratively customized: no payloads).
  auto capture = session.PrepareOnline(queries::CaptureCustomBackward());
  if (!capture.ok()) {
    std::fprintf(stderr, "%s\n", capture.status().ToString().c_str());
    return 1;
  }
  ProvenanceStore store;
  SsspProgram sssp(source);
  std::vector<double> distances;
  auto capture_stats =
      session.Capture(sssp, *capture, &store, /*retention_window=*/2,
                      &distances);
  if (!capture_stats.ok()) {
    std::fprintf(stderr, "%s\n", capture_stats.status().ToString().c_str());
    return 1;
  }
  std::printf("SSSP from %lld ran %d supersteps; custom provenance: %s in "
              "%d layers (input graph: %s)\n",
              static_cast<long long>(source), capture_stats->supersteps,
              HumanBytes(store.TotalBytes()).c_str(), store.num_layers(),
              HumanBytes(graph->InputByteSize()).c_str());

  // ---- Pick an output to explain: the farthest-reached vertex among
  // those that computed in the last superstep (the trace seed must be an
  // active (vertex, superstep) pair, like the paper's).
  Superstep last = store.num_layers() - 1;
  VertexId target = source;
  double max_distance = -1;
  {
    auto layer = store.GetLayer(last);
    if (!layer.ok()) return 1;
    const int prov_value = store.RelId("prov-value");
    for (const auto& slice : (*layer)->slices) {
      if (slice.rel != prov_value) continue;
      const double d = distances[static_cast<size_t>(slice.vertex)];
      if (d != kInfiniteDistance && d > max_distance) {
        max_distance = d;
        target = slice.vertex;
      }
    }
  }
  std::printf("tracing vertex %lld (distance %.3f) back from superstep %d\n",
              static_cast<long long>(target), max_distance, last);

  // ---- Query 12 over the custom store, descending layered evaluation.
  auto trace = session.PrepareOffline(
      queries::BackwardLineageCustom(), store,
      {{"alpha", Value(static_cast<int64_t>(target))},
       {"sigma", Value(static_cast<int64_t>(last))}});
  if (!trace.ok()) {
    std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
    return 1;
  }
  auto run = session.RunOffline(&store, *trace, EvalMode::kLayered);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }
  std::printf("trace visited %zu (vertex, superstep) pairs in %d layered "
              "supersteps\n",
              run->result.TupleCount("back-trace"), run->stats.supersteps);
  const Relation* lineage = run->result.Table("back-lineage");
  std::printf("lineage (inputs at superstep 0 explaining the output):\n");
  if (lineage != nullptr) {
    int shown = 0;
    for (const std::string& row : lineage->ToSortedStrings()) {
      std::printf("  back-lineage%s\n", row.c_str());
      if (++shown >= 10) {
        std::printf("  ... (%zu total)\n", lineage->size());
        break;
      }
    }
  }
  return 0;
}
