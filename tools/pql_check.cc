// pql_check — a PQL linter/explainer.
//
// Usage:
//   pql_check <query.pql> [--param name=value ...] [--offline]
//             [--stored name/arity ...]
//
// Parses the query, binds parameters, runs the full semantic analysis and
// prints the classification a developer needs before running it: strata,
// per-rule direction, VC compatibility, which relations would be shipped
// between vertices, the evaluation modes the query is eligible for, and
// whether capture would take the compiled fast path.
//
// Exit-code contract (shared with ariadne_lint):
//   0  the query parsed, bound and analyzed cleanly
//   1  the query is invalid (parse, parameter or analysis errors)
//   2  usage errors or file IO failures (missing/unreadable input)
//
// For multi-error reporting with source spans, fixits and SARIF output,
// use ariadne_lint; pql_check keeps the strict single-query contract.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/string_util.h"
#include "core/ariadne.h"

using namespace ariadne;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: pql_check <query.pql> [--param name=value ...] [--offline]\n"
      "                 [--stored name/arity ...]\n"
      "  --param   bind $name (value parsed as int, then double, else "
      "string)\n"
      "  --offline analyze for offline evaluation (transient EDBs "
      "rejected)\n"
      "  --stored  declare a captured relation, e.g. --stored prov-send/2\n");
  return 2;
}

Value ParseParamValue(const std::string& text) {
  try {
    size_t pos = 0;
    const int64_t i = std::stoll(text, &pos);
    if (pos == text.size()) return Value(i);
  } catch (...) {
  }
  try {
    size_t pos = 0;
    const double d = std::stod(text, &pos);
    if (pos == text.size()) return Value(d);
  } catch (...) {
  }
  return Value(text);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string path = argv[1];
  QueryParams params;
  StoreSchema schema;
  bool offline = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--offline") == 0) {
      offline = true;
    } else if (std::strcmp(argv[i], "--param") == 0 && i + 1 < argc) {
      const std::string kv = argv[++i];
      const auto eq = kv.find('=');
      if (eq == std::string::npos) return Usage();
      params.emplace_back(kv.substr(0, eq), ParseParamValue(kv.substr(eq + 1)));
    } else if (std::strcmp(argv[i], "--stored") == 0 && i + 1 < argc) {
      const std::string spec = argv[++i];
      const auto slash = spec.find('/');
      if (slash == std::string::npos) return Usage();
      schema.relations.push_back(
          {spec.substr(0, slash), std::atoi(spec.c_str() + slash + 1)});
    } else {
      return Usage();
    }
  }

  auto text = ReadFile(path);
  if (!text.ok()) {
    std::fprintf(stderr, "error: %s\n", text.status().ToString().c_str());
    return 2;  // IO failure, not a query problem
  }
  auto program = ParseProgram(*text);
  if (!program.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }
  std::printf("parsed %zu rule(s)\n", program->rules.size());
  const auto unbound = program->UnboundParameters();
  if (!unbound.empty() && !params.empty()) {
    Status bound = program->BindParameters(params);
    if (!bound.ok()) {
      std::fprintf(stderr, "parameter error: %s\n", bound.ToString().c_str());
      return 1;
    }
  } else if (!unbound.empty()) {
    std::fprintf(stderr, "unbound parameters:");
    for (const auto& p : unbound) std::fprintf(stderr, " $%s", p.c_str());
    std::fprintf(stderr, " (bind with --param)\n");
    return 1;
  }

  AnalyzeOptions options;
  options.allow_transient = !offline;
  auto query = Analyze(*program, Catalog::Default(), UdfRegistry::Default(),
                       schema.relations.empty() ? nullptr : &schema, options);
  if (!query.ok()) {
    std::fprintf(stderr, "analysis error: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }

  std::printf("%s", query->DebugString().c_str());
  std::printf("eligible evaluation modes:");
  for (EvalMode mode :
       {EvalMode::kOnline, EvalMode::kLayered, EvalMode::kNaive}) {
    if (ValidateMode(*query, mode).ok()) {
      std::printf(" %s", EvalModeToString(mode));
    }
  }
  std::printf("\n");
  if (query->fast_capture().has_value()) {
    std::printf("capture: compiled fast path (%zu projection(s))\n",
                query->fast_capture()->projections.size());
  } else {
    std::printf("capture: interpreted\n");
  }
  std::printf("output tables:");
  for (int pred : query->output_preds()) {
    std::printf(" %s/%d", query->pred(pred).name.c_str(),
                query->pred(pred).arity);
  }
  std::printf("\n");
  return 0;
}
