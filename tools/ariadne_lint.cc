// ariadne_lint: static analyzer for PQL programs.
//
// Runs the full front end (lexer, recovering parser, semantic analysis)
// plus the lint passes over one or more .pql files or directories, and
// reports every diagnostic in one invocation — text (clang-style carets),
// JSON, or SARIF 2.1.0 for code-scanning UIs.
//
// Exit codes: 0 clean or warnings only; 1 errors (or warnings under
// --Werror); 2 usage or IO errors. See --help for flags and the `%!`
// per-file pragma syntax.

#include <cstdio>
#include <string>
#include <vector>

#include "pql/lint/driver.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string out;
  std::string err;
  const int code = ariadne::lint::RunAriadneLint(args, &out, &err);
  if (!out.empty()) std::fputs(out.c_str(), stdout);
  if (!err.empty()) std::fputs(err.c_str(), stderr);
  return code;
}
