// ariadne_serve — long-lived multi-tenant provenance query server: loads
// one captured store and serves many concurrent PQL queries with
// Quegel-style superstep-sharing (DESIGN.md §2.6).
//
// Usage:
//   ariadne_serve --store <file.prov>
//                 [--graph <edge-list> | --rmat-scale N --avg-degree D
//                  --seed S]
//                 [--max-inflight N] [--queue-cap N] [--deadline-ms D]
//                 [--step-threads N] [--stats-json <file>]
//
// The graph flags must reproduce the graph the store was captured over
// (same generator parameters or the same edge-list file).
//
// Protocol (stdin, one request per line; EOF drains and exits):
//   query <name> <file.pql|apt|q4|q5|q6> [param=value ...]
//   stats                 # print aggregate server stats so far
//   health                # print a HealthSnapshot (breaker, queue, shed)
//
// One result line per query is printed in submission order once all
// requests are read:
//   <name>: OK tables: safe=12 ... (queue 0.000s exec 0.041s)
//   <name>: ERROR <status>
// Exit code 0 iff every query succeeded.

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/mem.h"
#include "common/serialize.h"
#include "common/string_util.h"
#include "core/ariadne.h"
#include "graph/paged_backend.h"
#include "recovery/fault_injector.h"
#include "serve/server.h"
#include "storage/memory_budget.h"

using namespace ariadne;

namespace {

struct Args {
  std::string store_path;
  std::string graph_path;
  int rmat_scale = 11;
  double avg_degree = 12;
  uint64_t seed = 42;
  serve::ServerOptions server;
  std::string stats_json;
  std::string graph_backend = "memory";  ///< memory|paged
  /// Fail-fast drain budget handed to Shutdown at EOF; < 0 = full drain.
  double shutdown_timeout_ms = -1.0;
  std::string inject;  ///< fault scenario DSL (see fault_injector.h)
  uint64_t inject_seed = 1;
  /// TOTAL unified budget; the paged topology gets its slice via
  /// storage::ResolveBudgetSplit (same contract as ariadne_run).
  double mem_budget_mb = 0;
  double graph_budget_fraction = storage::kDefaultGraphBudgetFraction;
};

int Usage() {
  std::fprintf(stderr,
               "usage: ariadne_serve --store <file.prov>\n"
               "  [--graph <edge-list> | --rmat-scale N --avg-degree D "
               "--seed S]\n"
               "  [--max-inflight N] [--queue-cap N] [--deadline-ms D]\n"
               "  [--step-threads N] [--stats-json <file>]\n"
               "  [--graph-backend memory|paged] [--mem-budget-mb M] "
               "[--graph-budget-fraction F]\n"
               "  [--step-retries N] [--breaker-threshold N] "
               "[--breaker-cooldown-ms D] [--no-shed]\n"
               "  [--shutdown-timeout-ms D] [--inject rule,...] "
               "[--inject-seed S]\n"
               "reads 'query <name> <file.pql> [param=value ...]' lines "
               "from stdin ('stats'/'health' print counters)\n");
  return 2;
}

Value ParseParamValue(const std::string& text) {
  try {
    size_t pos = 0;
    const int64_t i = std::stoll(text, &pos);
    if (pos == text.size()) return Value(i);
  } catch (...) {
  }
  try {
    size_t pos = 0;
    const double d = std::stod(text, &pos);
    if (pos == text.size()) return Value(d);
  } catch (...) {
  }
  return Value(text);
}

Result<std::string> QueryText(const std::string& name) {
  if (name == "apt") return queries::Apt();
  if (name == "q4") return queries::PageRankInDegreeCheck();
  if (name == "q5") return queries::MonotoneUpdateCheck();
  if (name == "q6") return queries::NoMessageNoChangeCheck();
  return ReadFile(name);
}

std::string ServerStatsLine(const serve::ServerStats& st) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "server: %llu submitted, %llu rejected, %llu shed, %llu coalesced, "
      "%llu completed, %llu failed, %llu expired; "
      "%llu shared scans over %llu query-steps "
      "(%.0f%% shared, mean group %.1f); "
      "%llu step retries, %llu scan failures, %llu breaker trips",
      static_cast<unsigned long long>(st.submitted),
      static_cast<unsigned long long>(st.rejected),
      static_cast<unsigned long long>(st.shed),
      static_cast<unsigned long long>(st.coalesced),
      static_cast<unsigned long long>(st.completed),
      static_cast<unsigned long long>(st.failed),
      static_cast<unsigned long long>(st.expired),
      static_cast<unsigned long long>(st.scan.scans),
      static_cast<unsigned long long>(st.query_steps),
      100.0 * st.scan.HitRate(), st.MeanGroupSize(),
      static_cast<unsigned long long>(st.step_retries),
      static_cast<unsigned long long>(st.scan_failures),
      static_cast<unsigned long long>(st.breaker_trips));
  return buf;
}

std::string ServerStatsJson(const serve::ServerStats& st) {
  json::JsonObject scan;
  scan.Set("scans", st.scan.scans)
      .Set("subscribers", st.scan.subscribers)
      .Set("shared_hits", st.scan.shared_hits)
      .Set("hit_rate", st.scan.HitRate())
      .Set("view_evictions", st.scan.view_evictions);
  json::JsonObject o;
  o.Set("tool", "ariadne_serve")
      .Set("submitted", st.submitted)
      .Set("rejected", st.rejected)
      .Set("shed", st.shed)
      .Set("admitted", st.admitted)
      .Set("coalesced", st.coalesced)
      .Set("completed", st.completed)
      .Set("failed", st.failed)
      .Set("expired", st.expired)
      .Set("group_steps", st.group_steps)
      .Set("query_steps", st.query_steps)
      .Set("max_group_size", st.max_group_size)
      .Set("mean_group_size", st.MeanGroupSize())
      .Set("step_retries", st.step_retries)
      .Set("scan_failures", st.scan_failures)
      .Set("breaker_trips", st.breaker_trips)
      .Set("breaker_probes", st.breaker_probes)
      .SetRaw("shared_scan", scan.Dump());
  return o.Dump();
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const std::string flag = argv[i];
    const char* v = nullptr;
    if (flag == "--store" && (v = next())) {
      args.store_path = v;
    } else if (flag == "--graph" && (v = next())) {
      args.graph_path = v;
    } else if (flag == "--rmat-scale" && (v = next())) {
      args.rmat_scale = std::atoi(v);
    } else if (flag == "--avg-degree" && (v = next())) {
      args.avg_degree = std::atof(v);
    } else if (flag == "--seed" && (v = next())) {
      args.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (flag == "--max-inflight" && (v = next())) {
      args.server.max_inflight = static_cast<size_t>(std::atoll(v));
    } else if (flag == "--queue-cap" && (v = next())) {
      args.server.queue_capacity = static_cast<size_t>(std::atoll(v));
    } else if (flag == "--deadline-ms" && (v = next())) {
      args.server.default_deadline_ms = std::atof(v);
    } else if (flag == "--step-threads" && (v = next())) {
      args.server.step_threads = static_cast<size_t>(std::atoll(v));
    } else if (flag == "--stats-json" && (v = next())) {
      args.stats_json = v;
    } else if (flag == "--step-retries" && (v = next())) {
      args.server.step_retry_attempts = std::atoi(v);
    } else if (flag == "--breaker-threshold" && (v = next())) {
      args.server.breaker_threshold = std::atoi(v);
    } else if (flag == "--breaker-cooldown-ms" && (v = next())) {
      args.server.breaker_cooldown_ms = std::atof(v);
    } else if (flag == "--no-shed") {
      args.server.shed_on_deadline = false;
    } else if (flag == "--shutdown-timeout-ms" && (v = next())) {
      args.shutdown_timeout_ms = std::atof(v);
    } else if (flag == "--inject" && (v = next())) {
      args.inject = v;
    } else if (flag == "--inject-seed" && (v = next())) {
      args.inject_seed = static_cast<uint64_t>(std::atoll(v));
    } else if (flag == "--graph-backend" && (v = next())) {
      args.graph_backend = v;
    } else if (flag == "--mem-budget-mb" && (v = next())) {
      args.mem_budget_mb = std::atof(v);
    } else if (flag == "--graph-budget-fraction" && (v = next())) {
      args.graph_budget_fraction = std::atof(v);
    } else {
      return Usage();
    }
  }
  if (args.store_path.empty()) return Usage();

  if (!args.inject.empty()) {
    Status armed =
        recovery::FaultInjector::Global().Arm(args.inject, args.inject_seed);
    if (!armed.ok()) {
      std::fprintf(stderr, "inject: %s\n", armed.ToString().c_str());
      return 2;
    }
  }

  if (args.graph_backend != "memory" && args.graph_backend != "paged") {
    std::fprintf(stderr, "graph-backend: unknown backend '%s'\n",
                 args.graph_backend.c_str());
    return Usage();
  }
  const storage::BudgetSplit split = storage::ResolveBudgetSplit(
      static_cast<size_t>(args.mem_budget_mb * 1024 * 1024),
      /*graph_paged=*/args.graph_backend == "paged",
      args.graph_budget_fraction);

  std::unique_ptr<PagedBackend> paged;
  std::string paged_spill;
  Result<Graph> graph = Status::Internal("no graph");
  if (args.graph_backend == "paged") {
    paged_spill = (std::filesystem::temp_directory_path() /
                   ("ariadne_serve." + std::to_string(::getpid()) + ".agp"))
                      .string();
    Status built = Status::OK();
    if (!args.graph_path.empty()) {
      built = PagedBackend::BuildFromEdgeList(args.graph_path, paged_spill);
    } else {
      Result<Graph> generated = GenerateRmat({.scale = args.rmat_scale,
                                              .avg_degree = args.avg_degree,
                                              .seed = args.seed,
                                              .max_weight = 2.5});
      if (!generated.ok()) {
        std::fprintf(stderr, "graph: %s\n",
                     generated.status().ToString().c_str());
        return 1;
      }
      built = PagedBackend::CreateFrom(*generated, paged_spill);
    }
    if (built.ok()) {
      PagedBackendOptions options;
      options.budget_bytes = split.graph_topology;
      auto opened = PagedBackend::Open(paged_spill, options);
      if (!opened.ok()) {
        built = opened.status();
      } else {
        paged = std::move(*opened);
      }
    }
    if (!built.ok()) {
      std::fprintf(stderr, "graph-backend: %s\n", built.ToString().c_str());
      return 1;
    }
  } else if (!args.graph_path.empty()) {
    graph = LoadEdgeList(args.graph_path);
  } else {
    graph = GenerateRmat({.scale = args.rmat_scale,
                          .avg_degree = args.avg_degree,
                          .seed = args.seed,
                          .max_weight = 2.5});
  }
  if (paged == nullptr && !graph.ok()) {
    std::fprintf(stderr, "graph: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  const Graph& g = paged != nullptr ? *paged : *graph;
  auto store = ProvenanceStore::LoadFromFile(args.store_path);
  if (!store.ok()) {
    std::fprintf(stderr, "store: %s\n", store.status().ToString().c_str());
    return 1;
  }
  auto state = serve::ServiceState::Create(&g, &*store);
  if (!state.ok()) {
    std::fprintf(stderr, "serve: %s\n", state.status().ToString().c_str());
    return 1;
  }
  std::printf("serving %s: %d layers, %lld tuples over %lld vertices "
              "(%s backend, max-inflight %zu, queue %zu, "
              "%zu step thread(s))\n",
              args.store_path.c_str(), store->num_layers(),
              static_cast<long long>(store->TotalTuples()),
              static_cast<long long>(g.num_vertices()), g.backend_name(),
              args.server.max_inflight, args.server.queue_capacity,
              args.server.step_threads);
  std::fflush(stdout);

  std::unique_ptr<serve::ServiceState> service = state.MoveValue();
  serve::QueryServer server(service.get(), args.server);
  struct Submitted {
    std::string name;
    std::future<serve::ServeResponse> future;
  };
  std::vector<Submitted> submitted;

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream tokens(line);
    std::string verb;
    tokens >> verb;
    if (verb.empty() || verb[0] == '#') continue;
    if (verb == "stats") {
      std::printf("%s\n", ServerStatsLine(server.stats()).c_str());
      std::fflush(stdout);
      continue;
    }
    if (verb == "health") {
      std::printf("health: %s\n", server.health().ToString().c_str());
      std::fflush(stdout);
      continue;
    }
    if (verb != "query") {
      std::fprintf(stderr, "protocol: unknown verb '%s'\n", verb.c_str());
      continue;
    }
    serve::ServeRequest request;
    std::string source;
    tokens >> request.name >> source;
    if (request.name.empty() || source.empty()) {
      std::fprintf(stderr,
                   "protocol: expected 'query <name> <file.pql> "
                   "[param=value ...]'\n");
      continue;
    }
    std::string kv;
    bool bad_param = false;
    while (tokens >> kv) {
      const auto eq = kv.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "protocol: bad param '%s' for query %s\n",
                     kv.c_str(), request.name.c_str());
        bad_param = true;
        break;
      }
      request.params.emplace_back(kv.substr(0, eq),
                                  ParseParamValue(kv.substr(eq + 1)));
    }
    if (bad_param) continue;
    auto text = QueryText(source);
    if (!text.ok()) {
      std::fprintf(stderr, "%s: %s\n", request.name.c_str(),
                   text.status().ToString().c_str());
      continue;
    }
    request.text = text.MoveValue();
    std::string name = request.name;
    submitted.push_back(
        Submitted{std::move(name), server.Submit(std::move(request))});
  }

  // EOF: drain every in-flight and queued query (fail-fast past
  // --shutdown-timeout-ms), then report in submission order.
  server.Shutdown(args.shutdown_timeout_ms);
  int failures = 0;
  for (Submitted& s : submitted) {
    serve::ServeResponse response = s.future.get();
    if (!response.ok()) {
      std::printf("%s: ERROR %s\n", s.name.c_str(),
                  response.status.ToString().c_str());
      ++failures;
      continue;
    }
    std::string tables;
    for (const std::string& table : response.result.TableNames()) {
      tables += " " + table + "=" +
                std::to_string(response.result.TupleCount(table));
    }
    std::printf("%s: OK tables:%s (queue %.3fs exec %.3fs, %d steps)\n",
                s.name.c_str(), tables.c_str(), response.queue_seconds,
                response.exec_seconds,
                static_cast<int>(response.stats.supersteps));
  }
  const serve::ServerStats stats = server.stats();
  std::printf("%s\n", ServerStatsLine(stats).c_str());
  if (paged != nullptr) {
    const GraphBackendStats gb = paged->backend_stats();
    std::printf("graph backend: %d partition(s), %llu fault(s), "
                "%llu prefetch load(s), %llu eviction(s), peak rss %s\n",
                gb.partitions,
                static_cast<unsigned long long>(gb.partition_faults),
                static_cast<unsigned long long>(gb.prefetch_loads),
                static_cast<unsigned long long>(gb.evictions),
                HumanBytes(PeakRssBytes()).c_str());
  }
  if (!args.stats_json.empty()) {
    Status written =
        WriteFile(args.stats_json, ServerStatsJson(stats) + "\n");
    if (!written.ok()) {
      std::fprintf(stderr, "stats-json: %s\n", written.ToString().c_str());
      return 1;
    }
  }
  const int rc = failures == 0 ? 0 : 1;
  if (paged != nullptr) {
    // The AGP1 spill is scratch; drop it with the backend.
    paged.reset();
    std::filesystem::remove(paged_spill);
  }
  return rc;
}
