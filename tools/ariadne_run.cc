// ariadne_run — run an analytic with a provenance query from the command
// line, over a generated or loaded graph.
//
// Usage:
//   ariadne_run --analytic pagerank|sssp|wcc|bfs [--graph <edge-list>]
//               [--rmat-scale N] [--avg-degree D] [--seed S]
//               [--query <file.pql>|apt|q4|q5|q6] [--param name=value ...]
//               [--mode online|capture] [--store-out <file>]
//               [--source V] [--iterations N] [--retention W] [--dump T]
//
// Examples:
//   # apt query online on PageRank over a generated web graph
//   ariadne_run --analytic pagerank --query apt --param eps=0.01
//
//   # capture full provenance of SSSP over an edge-list file
//   ariadne_run --analytic sssp --graph web.el --query capture-full \
//               --mode capture --store-out web.prov

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "analytics/bfs.h"
#include "common/serialize.h"
#include "common/string_util.h"
#include "core/ariadne.h"

using namespace ariadne;

namespace {

struct Args {
  std::string analytic = "pagerank";
  std::string graph_path;
  int rmat_scale = 11;
  double avg_degree = 12;
  uint64_t seed = 42;
  std::string query = "apt";
  QueryParams params;
  std::string mode = "online";
  std::string store_out;
  VertexId source = -1;
  int iterations = 20;
  int retention = 2;
  std::string dump_table;
  std::string spill_dir;
  double mem_budget_mb = 0;  ///< meaningful with --spill-dir
  int flush_threads = 1;
  bool plan_joins = true;  ///< --no-plan: legacy literal order and probes
};

int Usage() {
  std::fprintf(stderr,
               "usage: ariadne_run --analytic pagerank|sssp|wcc|bfs\n"
               "  [--graph <edge-list>] [--rmat-scale N] [--avg-degree D]\n"
               "  [--seed S] [--query <file.pql>|apt|q4|q5|q6|capture-full|"
               "capture-custom]\n"
               "  [--param name=value ...] [--mode online|capture]\n"
               "  [--store-out <file>] [--source V] [--iterations N]\n"
               "  [--retention W] [--dump <table>] [--no-plan]\n"
               "  [--spill-dir <dir>] [--mem-budget-mb M] "
               "[--flush-threads N]\n");
  return 2;
}

Value ParseParamValue(const std::string& text) {
  try {
    size_t pos = 0;
    const int64_t i = std::stoll(text, &pos);
    if (pos == text.size()) return Value(i);
  } catch (...) {
  }
  try {
    size_t pos = 0;
    const double d = std::stod(text, &pos);
    if (pos == text.size()) return Value(d);
  } catch (...) {
  }
  return Value(text);
}

Result<std::string> QueryText(const Args& args) {
  if (args.query == "apt") return queries::Apt();
  if (args.query == "q4") return queries::PageRankInDegreeCheck();
  if (args.query == "q5") return queries::MonotoneUpdateCheck();
  if (args.query == "q6") return queries::NoMessageNoChangeCheck();
  if (args.query == "capture-full") return queries::CaptureFull();
  if (args.query == "capture-custom") return queries::CaptureCustomBackward();
  return ReadFile(args.query);
}

template <typename P>
int RunWith(const Args& args, const Graph& graph, P& program) {
  SessionOptions session_options;
  session_options.plan_joins = args.plan_joins;
  Session session(&graph, session_options);
  auto text = QueryText(args);
  if (!text.ok()) {
    std::fprintf(stderr, "query: %s\n", text.status().ToString().c_str());
    return 1;
  }
  auto query = session.PrepareOnline(*text, args.params);
  if (!query.ok()) {
    std::fprintf(stderr, "analysis: %s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", query->DebugString().c_str());

  if (args.mode == "capture") {
    ProvenanceStore store;
    if (!args.spill_dir.empty()) {
      storage::LayerStoreOptions options;
      options.dir = args.spill_dir;
      options.mem_budget_bytes =
          static_cast<size_t>(args.mem_budget_mb * 1024 * 1024);
      options.flush_threads = args.flush_threads;
      Status configured = store.ConfigureStorage(std::move(options));
      if (!configured.ok()) {
        std::fprintf(stderr, "spill: %s\n", configured.ToString().c_str());
        return 1;
      }
    }
    auto stats = session.Capture(program, *query, &store, args.retention);
    if (!stats.ok()) {
      std::fprintf(stderr, "capture: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    std::printf("captured %d layers, %s (%lld tuples) in %.3fs over %d "
                "supersteps\n",
                store.num_layers(), HumanBytes(store.TotalBytes()).c_str(),
                static_cast<long long>(store.TotalTuples()), stats->seconds,
                stats->supersteps);
    if (!args.spill_dir.empty()) {
      const storage::StorageStats st = store.storage_stats();
      std::printf(
          "storage: %llu layers flushed (%d spilled), %llu pages written, "
          "%s compressed / %s raw (ratio %.2f), %.3fs flushing\n",
          static_cast<unsigned long long>(st.layers_flushed),
          store.SpilledLayerCount(),
          static_cast<unsigned long long>(st.pages_written),
          HumanBytes(st.compressed_bytes).c_str(),
          HumanBytes(st.raw_serialized_bytes).c_str(), st.CompressionRatio(),
          st.flush_seconds);
      std::printf(
          "storage: cache %llu hit / %llu miss (%.0f%% hit rate), "
          "%llu evictions, %llu pages read, %llu prefetch requests\n",
          static_cast<unsigned long long>(st.cache_hits),
          static_cast<unsigned long long>(st.cache_misses),
          100.0 * st.CacheHitRate(),
          static_cast<unsigned long long>(st.cache_evictions),
          static_cast<unsigned long long>(st.pages_read),
          static_cast<unsigned long long>(st.prefetch_requests));
    }
    if (!args.store_out.empty()) {
      Status saved = store.SaveToFile(args.store_out);
      if (!saved.ok()) {
        std::fprintf(stderr, "save: %s\n", saved.ToString().c_str());
        return 1;
      }
      std::printf("store written to %s\n", args.store_out.c_str());
    }
    return 0;
  }

  auto run = session.RunOnline(program, *query, args.retention);
  if (!run.ok()) {
    std::fprintf(stderr, "run: %s\n", run.status().ToString().c_str());
    return 1;
  }
  std::printf("analytic: %d supersteps, %lld messages, %.3fs\n",
              run->engine_stats.supersteps,
              static_cast<long long>(run->engine_stats.total_messages),
              run->engine_stats.seconds);
  std::printf("query tables:\n");
  for (const std::string& name : run->query_result.TableNames()) {
    std::printf("  %-20s %zu tuple(s)\n", name.c_str(),
                run->query_result.TupleCount(name));
  }
  const std::string profile = run->eval_stats.Summary(*query);
  if (!profile.empty()) {
    std::printf("rule profile (%s):\n%s",
                args.plan_joins ? "planned" : "no-plan", profile.c_str());
  }
  if (!args.dump_table.empty()) {
    const Relation* rel = run->query_result.Table(args.dump_table);
    if (rel == nullptr) {
      std::fprintf(stderr, "no table named %s\n", args.dump_table.c_str());
      return 1;
    }
    for (const std::string& row : rel->ToSortedStrings()) {
      std::printf("%s%s\n", args.dump_table.c_str(), row.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const std::string flag = argv[i];
    const char* v = nullptr;
    if (flag == "--analytic" && (v = next())) {
      args.analytic = v;
    } else if (flag == "--graph" && (v = next())) {
      args.graph_path = v;
    } else if (flag == "--rmat-scale" && (v = next())) {
      args.rmat_scale = std::atoi(v);
    } else if (flag == "--avg-degree" && (v = next())) {
      args.avg_degree = std::atof(v);
    } else if (flag == "--seed" && (v = next())) {
      args.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (flag == "--query" && (v = next())) {
      args.query = v;
    } else if (flag == "--param" && (v = next())) {
      const std::string kv = v;
      const auto eq = kv.find('=');
      if (eq == std::string::npos) return Usage();
      args.params.emplace_back(kv.substr(0, eq),
                               ParseParamValue(kv.substr(eq + 1)));
    } else if (flag == "--mode" && (v = next())) {
      args.mode = v;
    } else if (flag == "--store-out" && (v = next())) {
      args.store_out = v;
    } else if (flag == "--source" && (v = next())) {
      args.source = std::atoll(v);
    } else if (flag == "--iterations" && (v = next())) {
      args.iterations = std::atoi(v);
    } else if (flag == "--retention" && (v = next())) {
      args.retention = std::atoi(v);
    } else if (flag == "--dump" && (v = next())) {
      args.dump_table = v;
    } else if (flag == "--no-plan") {
      args.plan_joins = false;
    } else if (flag == "--spill-dir" && (v = next())) {
      args.spill_dir = v;
    } else if (flag == "--mem-budget-mb" && (v = next())) {
      args.mem_budget_mb = std::atof(v);
    } else if (flag == "--flush-threads" && (v = next())) {
      args.flush_threads = std::atoi(v);
    } else {
      return Usage();
    }
  }

  Result<Graph> graph = Status::Internal("no graph");
  if (!args.graph_path.empty()) {
    graph = LoadEdgeList(args.graph_path);
  } else {
    graph = GenerateRmat({.scale = args.rmat_scale,
                          .avg_degree = args.avg_degree,
                          .seed = args.seed,
                          .max_weight = 2.5});
  }
  if (!graph.ok()) {
    std::fprintf(stderr, "graph: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("graph: %lld vertices, %lld edges\n",
              static_cast<long long>(graph->num_vertices()),
              static_cast<long long>(graph->num_edges()));
  const VertexId source =
      args.source >= 0 ? args.source : HighestDegreeVertex(*graph);

  if (args.analytic == "pagerank") {
    PageRankProgram program({.iterations = args.iterations});
    return RunWith(args, *graph, program);
  }
  if (args.analytic == "sssp") {
    SsspProgram program(source);
    return RunWith(args, *graph, program);
  }
  if (args.analytic == "wcc") {
    WccProgram program;
    return RunWith(args, *graph, program);
  }
  if (args.analytic == "bfs") {
    BfsProgram program(source);
    return RunWith(args, *graph, program);
  }
  return Usage();
}
