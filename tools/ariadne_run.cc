// ariadne_run — run an analytic with a provenance query from the command
// line, over a generated or loaded graph.
//
// Usage:
//   ariadne_run --analytic pagerank|sssp|wcc|bfs [--graph <edge-list>]
//               [--rmat-scale N] [--avg-degree D] [--seed S]
//               [--query <file.pql>|apt|q4|q5|q6] [--param name=value ...]
//               [--mode online|capture] [--store-out <file>]
//               [--source V] [--iterations N] [--retention W] [--dump T]
//
// Examples:
//   # apt query online on PageRank over a generated web graph
//   ariadne_run --analytic pagerank --query apt --param eps=0.01
//
//   # capture full provenance of SSSP over an edge-list file
//   ariadne_run --analytic sssp --graph web.el --query capture-full \
//               --mode capture --store-out web.prov

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <unistd.h>
#include <map>
#include <memory>
#include <string>

#include "analytics/bfs.h"
#include "common/json.h"
#include "common/mem.h"
#include "common/serialize.h"
#include "common/string_util.h"
#include "core/ariadne.h"
#include "graph/paged_backend.h"
#include "recovery/checkpoint.h"
#include "recovery/fault_injector.h"
#include "storage/memory_budget.h"

using namespace ariadne;

namespace {

struct Args {
  std::string analytic = "pagerank";
  std::string graph_path;
  int rmat_scale = 11;
  double avg_degree = 12;
  uint64_t seed = 42;
  std::string query = "apt";
  QueryParams params;
  std::string mode = "online";
  std::string store_out;
  VertexId source = -1;
  int iterations = 20;
  int retention = 2;
  std::string dump_table;
  std::string spill_dir;
  /// TOTAL unified memory budget across provenance page cache, paged graph
  /// topology, and paged vertex state (storage/memory_budget.h). With the
  /// in-memory graph backend the whole budget goes to provenance (legacy
  /// behavior); with --graph-backend paged it is split by
  /// --graph-budget-fraction.
  double mem_budget_mb = 0;
  int flush_threads = 1;
  std::string graph_backend = "memory";  ///< memory|paged
  double graph_budget_fraction =
      storage::kDefaultGraphBudgetFraction;  ///< graph share of total budget
  std::string graph_spill;  ///< AGP1 spill path (default under --spill-dir)
  /// Vertices per AGP1 partition frame (0 = default targeting ~4 MiB
  /// decoded fragments; small values force paging on small graphs).
  VertexId graph_partition_span = 0;
  /// Resolved split of --mem-budget-mb, computed once in main().
  storage::BudgetSplit split;
  bool plan_joins = true;  ///< --no-plan: legacy literal order and probes
  std::string checkpoint_dir;
  int checkpoint_every = 0;
  bool resume = false;
  std::string inject;         ///< fault scenario DSL (see fault_injector.h)
  uint64_t inject_seed = 1;   ///< reserved for randomized scenarios
  std::string degrade = "fail";
  std::string values_out;     ///< binary dump of final vertex values
  std::string stats_json;     ///< machine-readable run report (--stats-json)
};

int Usage() {
  std::fprintf(stderr,
               "usage: ariadne_run --analytic pagerank|sssp|wcc|bfs\n"
               "  [--graph <edge-list>] [--rmat-scale N] [--avg-degree D]\n"
               "  [--seed S] [--query <file.pql>|apt|q4|q5|q6|capture-full|"
               "capture-custom]\n"
               "  [--param name=value ...] [--mode online|capture]\n"
               "  [--store-out <file>] [--source V] [--iterations N]\n"
               "  [--retention W] [--dump <table>] [--no-plan]\n"
               "  [--spill-dir <dir>] [--mem-budget-mb M] "
               "[--flush-threads N]\n"
               "  [--graph-backend memory|paged] "
               "[--graph-budget-fraction F] [--graph-spill <file>]\n"
               "  [--graph-partition-span N]\n"
               "  [--checkpoint-dir <dir>] [--checkpoint-every N] [--resume]\n"
               "  [--inject point:N[+][:error|throw|crash],...] "
               "[--inject-seed S]\n"
               "  [--degrade-policy fail|capture-off|forward-lineage]\n"
               "  [--values-out <file>] [--stats-json <file>]\n");
  return 2;
}

Result<CaptureDegradePolicy> ParseDegradePolicy(const std::string& name) {
  if (name == "fail") return CaptureDegradePolicy::kFail;
  if (name == "capture-off") return CaptureDegradePolicy::kCaptureOff;
  if (name == "forward-lineage") return CaptureDegradePolicy::kForwardLineage;
  return Status::InvalidArgument("unknown degrade policy '" + name +
                                 "' (fail|capture-off|forward-lineage)");
}

Value ParseParamValue(const std::string& text) {
  try {
    size_t pos = 0;
    const int64_t i = std::stoll(text, &pos);
    if (pos == text.size()) return Value(i);
  } catch (...) {
  }
  try {
    size_t pos = 0;
    const double d = std::stod(text, &pos);
    if (pos == text.size()) return Value(d);
  } catch (...) {
  }
  return Value(text);
}

Result<std::string> QueryText(const Args& args) {
  if (args.query == "apt") return queries::Apt();
  if (args.query == "q4") return queries::PageRankInDegreeCheck();
  if (args.query == "q5") return queries::MonotoneUpdateCheck();
  if (args.query == "q6") return queries::NoMessageNoChangeCheck();
  if (args.query == "capture-full") return queries::CaptureFull();
  if (args.query == "capture-custom") return queries::CaptureCustomBackward();
  return ReadFile(args.query);
}

/// Dumps final vertex values as a deterministic binary image (the crash
/// recovery tests compare these byte-for-byte across resumed runs).
template <typename V>
Status DumpValues(const std::string& path, const std::vector<V>& values) {
  BinaryWriter w;
  w.WriteU64(values.size());
  if constexpr (recovery::Checkpointable<V>) {
    for (const V& v : values) recovery::CheckpointTraits<V>::Write(w, v);
  } else {
    return Status::Unsupported("--values-out: value type not serializable");
  }
  return WriteFile(path, w.MoveData());
}

void PrintRecoveryStats(const RunStats& stats) {
  if (stats.checkpoints_written > 0 || stats.resumed_from_step >= 0 ||
      stats.injected_faults > 0 || stats.checkpoint_failures > 0) {
    std::printf(
        "recovery: %lld checkpoint(s) in %.3fs, %lld failure(s), resumed "
        "from step %d, %lld injected fault(s)\n",
        static_cast<long long>(stats.checkpoints_written),
        stats.checkpoint_seconds,
        static_cast<long long>(stats.checkpoint_failures),
        stats.resumed_from_step,
        static_cast<long long>(stats.injected_faults));
  }
  if (stats.capture_degraded) {
    std::printf("recovery: CAPTURE DEGRADED at superstep %d\n",
                stats.capture_degraded_at);
  }
}

// ---- --stats-json emission (machine-readable run report) ----

std::string EngineStatsJson(const RunStats& s) {
  json::JsonObject o;
  o.Set("supersteps", static_cast<int64_t>(s.supersteps))
      .Set("total_messages", s.total_messages)
      .Set("total_active", s.total_active)
      .Set("seconds", s.seconds)
      .Set("halted_by_cap", s.halted_by_cap)
      .Set("dropped_messages", s.dropped_messages)
      .Set("combine_hits", s.combine_hits)
      .Set("rebuild_seconds", s.rebuild_seconds)
      .Set("compute_seconds", s.compute_seconds)
      .Set("merge_seconds", s.merge_seconds)
      .Set("checkpoints_written", s.checkpoints_written)
      .Set("checkpoint_seconds", s.checkpoint_seconds)
      .Set("checkpoint_failures", s.checkpoint_failures)
      .Set("resumed_from_step", static_cast<int64_t>(s.resumed_from_step))
      .Set("injected_faults", s.injected_faults)
      .Set("capture_degraded", s.capture_degraded)
      .Set("capture_degraded_at",
           static_cast<int64_t>(s.capture_degraded_at));
  return o.Dump();
}

std::string RuleStatsJson(const RuleEvalStats& r) {
  json::JsonObject o;
  o.Set("evaluations", r.evaluations)
      .Set("rows_scanned", r.rows_scanned)
      .Set("index_probes", r.index_probes)
      .Set("probe_rows", r.probe_rows)
      .Set("index_builds", r.index_builds)
      .Set("delta_rescans", r.delta_rescans)
      .Set("derived", r.derived)
      .Set("seconds", r.seconds);
  return o.Dump();
}

std::string EvalStatsJson(const EvalStats& e) {
  std::vector<std::string> rules;
  rules.reserve(e.rules.size());
  for (const RuleEvalStats& r : e.rules) rules.push_back(RuleStatsJson(r));
  json::JsonObject o;
  o.SetRaw("total", RuleStatsJson(e.Total()))
      .SetRaw("rules", json::JsonArray(rules));
  return o.Dump();
}

std::string StorageStatsJson(const storage::StorageStats& st) {
  json::JsonObject o;
  o.Set("layers_flushed", st.layers_flushed)
      .Set("pages_written", st.pages_written)
      .Set("compressed_bytes", st.compressed_bytes)
      .Set("raw_serialized_bytes", st.raw_serialized_bytes)
      .Set("compression_ratio", st.CompressionRatio())
      .Set("pages_read", st.pages_read)
      .Set("prefetch_requests", st.prefetch_requests)
      .Set("prefetch_pages", st.prefetch_pages)
      .Set("flush_seconds", st.flush_seconds)
      .Set("flush_retries", st.flush_retries)
      .Set("read_retries", st.read_retries)
      .SetRaw("flush_retries_by_thread", [&] {
        std::vector<std::string> per_thread;
        per_thread.reserve(st.flush_retries_by_thread.size());
        for (uint64_t n : st.flush_retries_by_thread) {
          per_thread.push_back(std::to_string(n));
        }
        return json::JsonArray(per_thread);
      }())
      .Set("layers_quarantined", st.layers_quarantined)
      .Set("degraded", st.degraded)
      .Set("cache_hits", st.cache_hits)
      .Set("cache_misses", st.cache_misses)
      .Set("cache_hit_rate", st.CacheHitRate())
      .Set("cache_evictions", st.cache_evictions)
      .Set("cache_bytes", st.cache_bytes);
  return o.Dump();
}

std::string GraphBackendStatsJson(const GraphBackendStats& g) {
  json::JsonObject o;
  o.Set("budget_bytes", g.budget_bytes)
      .Set("resident_bytes", g.resident_bytes)
      .Set("footprint_bytes", g.footprint_bytes)
      .Set("partition_faults", g.partition_faults)
      .Set("cache_hits", g.cache_hits)
      .Set("prefetch_loads", g.prefetch_loads)
      .Set("prefetch_requests", g.prefetch_requests)
      .Set("evictions", g.evictions)
      .Set("max_partition_bytes", g.max_partition_bytes)
      .Set("partitions", static_cast<int64_t>(g.partitions))
      .Set("read_retries", g.read_retries)
      .Set("fd_reopens", g.fd_reopens)
      .Set("gave_up", g.gave_up);
  return o.Dump();
}

std::string VertexStateStatsJson(const VertexStateStats& s) {
  json::JsonObject o;
  o.Set("paged", s.paged)
      .Set("budget_bytes", s.budget_bytes)
      .Set("resident_bytes", s.resident_bytes)
      .Set("footprint_bytes", s.footprint_bytes)
      .Set("page_faults", s.page_faults)
      .Set("prefetch_loads", s.prefetch_loads)
      .Set("evictions", s.evictions)
      .Set("writebacks", s.writebacks)
      .Set("pages", static_cast<int64_t>(s.pages))
      .Set("read_retries", s.read_retries)
      .Set("write_retries", s.write_retries)
      .Set("fd_reopens", s.fd_reopens)
      .Set("gave_up", s.gave_up);
  return o.Dump();
}

std::string BudgetJson(const storage::BudgetSplit& split) {
  json::JsonObject o;
  o.Set("total_bytes", static_cast<uint64_t>(split.total))
      .Set("provenance_bytes", static_cast<uint64_t>(split.provenance))
      .Set("graph_topology_bytes",
           static_cast<uint64_t>(split.graph_topology))
      .Set("vertex_state_bytes", static_cast<uint64_t>(split.vertex_state));
  return o.Dump();
}

/// Memory section shared by both --stats-json branches: unified budget
/// split, peak RSS, and the per-component backend counters.
void AddMemoryStats(json::JsonObject& root, const Args& args,
                    const RunStats& stats) {
  root.Set("peak_rss_bytes", stats.peak_rss_bytes)
      .Set("graph_backend_name",
           args.graph_backend == "paged" ? "paged" : "memory");
  root.SetRaw("budget", BudgetJson(args.split));
  root.SetRaw("graph_backend", GraphBackendStatsJson(stats.graph_backend));
  root.SetRaw("vertex_state", VertexStateStatsJson(stats.vertex_state));
}

void PrintMemoryStats(const Args& args, const RunStats& stats) {
  if (args.graph_backend != "paged") return;
  const GraphBackendStats& g = stats.graph_backend;
  const VertexStateStats& s = stats.vertex_state;
  std::printf(
      "memory: budget %s, peak rss %s\n",
      storage::DescribeBudgetSplit(args.split).c_str(),
      HumanBytes(stats.peak_rss_bytes).c_str());
  std::printf(
      "graph backend: %d partition(s), %llu fault(s), %llu cache hit(s), "
      "%llu prefetch load(s), %llu eviction(s), %s resident of %s\n",
      g.partitions, static_cast<unsigned long long>(g.partition_faults),
      static_cast<unsigned long long>(g.cache_hits),
      static_cast<unsigned long long>(g.prefetch_loads),
      static_cast<unsigned long long>(g.evictions),
      HumanBytes(g.resident_bytes).c_str(),
      HumanBytes(g.footprint_bytes).c_str());
  if (s.paged) {
    std::printf(
        "vertex state: %d page(s), %llu fault(s), %llu prefetch load(s), "
        "%llu eviction(s), %llu writeback(s)\n",
        s.pages, static_cast<unsigned long long>(s.page_faults),
        static_cast<unsigned long long>(s.prefetch_loads),
        static_cast<unsigned long long>(s.evictions),
        static_cast<unsigned long long>(s.writebacks));
  }
  if (g.read_retries > 0 || g.fd_reopens > 0 || g.gave_up > 0 ||
      s.read_retries > 0 || s.write_retries > 0 || s.fd_reopens > 0 ||
      s.gave_up > 0) {
    std::printf(
        "resilience: graph %llu read retries / %llu reopen(s) / %llu gave "
        "up; vertex state %llu read + %llu write retries / %llu reopen(s) "
        "/ %llu gave up\n",
        static_cast<unsigned long long>(g.read_retries),
        static_cast<unsigned long long>(g.fd_reopens),
        static_cast<unsigned long long>(g.gave_up),
        static_cast<unsigned long long>(s.read_retries),
        static_cast<unsigned long long>(s.write_retries),
        static_cast<unsigned long long>(s.fd_reopens),
        static_cast<unsigned long long>(s.gave_up));
  }
}

json::JsonObject StatsJsonHeader(const Args& args, const Graph& graph) {
  json::JsonObject root;
  root.Set("tool", "ariadne_run")
      .Set("analytic", args.analytic)
      .Set("query", args.query)
      .Set("mode", args.mode);
  json::JsonObject g;
  g.Set("vertices", static_cast<int64_t>(graph.num_vertices()))
      .Set("edges", static_cast<int64_t>(graph.num_edges()));
  root.SetRaw("graph", g.Dump());
  return root;
}

int WriteStatsJson(const std::string& path, const json::JsonObject& root) {
  Status written = WriteFile(path, root.Dump() + "\n");
  if (!written.ok()) {
    std::fprintf(stderr, "stats-json: %s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("stats written to %s\n", path.c_str());
  return 0;
}

template <typename P>
int RunWith(const Args& args, const Graph& graph, P& program) {
  SessionOptions session_options;
  session_options.plan_joins = args.plan_joins;
  session_options.engine.checkpoint_dir = args.checkpoint_dir;
  session_options.engine.checkpoint_every = args.checkpoint_every;
  session_options.engine.resume = args.resume;
  if (args.graph_backend == "paged") {
    // Out-of-core run: vertex state pages against its slice of the unified
    // budget, spilling next to the graph's AGP1 file.
    session_options.engine.paged_vertex_state = true;
    session_options.engine.vertex_state_budget_bytes =
        args.split.vertex_state;
    session_options.engine.vertex_state_dir =
        std::filesystem::path(args.graph_spill).parent_path().string();
  }
  // The fingerprint ties a checkpoint to this exact run configuration;
  // the engine appends graph dimensions itself.
  session_options.engine.checkpoint_fingerprint =
      args.analytic + "|" + args.query + "|mode=" + args.mode +
      "|it=" + std::to_string(args.iterations) +
      "|seed=" + std::to_string(args.seed) +
      "|ret=" + std::to_string(args.retention);
  Session session(&graph, session_options);
  auto text = QueryText(args);
  if (!text.ok()) {
    std::fprintf(stderr, "query: %s\n", text.status().ToString().c_str());
    return 1;
  }
  auto query = session.PrepareOnline(*text, args.params);
  if (!query.ok()) {
    std::fprintf(stderr, "analysis: %s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", query->DebugString().c_str());

  if (args.mode == "capture") {
    ProvenanceStore store;
    if (!args.spill_dir.empty()) {
      storage::LayerStoreOptions options;
      options.dir = args.spill_dir;
      // Provenance gets its slice of the unified budget (all of it when
      // the graph backend is in-memory).
      options.mem_budget_bytes = args.split.provenance;
      options.flush_threads = args.flush_threads;
      Status configured = store.ConfigureStorage(std::move(options));
      if (!configured.ok()) {
        std::fprintf(stderr, "spill: %s\n", configured.ToString().c_str());
        return 1;
      }
    }
    auto policy = ParseDegradePolicy(args.degrade);
    if (!policy.ok()) {
      std::fprintf(stderr, "degrade: %s\n", policy.status().ToString().c_str());
      return 1;
    }
    std::vector<typename P::ValueType> final_values;
    auto stats = session.Capture(program, *query, &store, args.retention,
                                 &final_values, /*use_fast_capture=*/true,
                                 *policy);
    if (!stats.ok()) {
      std::fprintf(stderr, "capture: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    std::printf("captured %d layers, %s (%lld tuples) in %.3fs over %d "
                "supersteps\n",
                store.num_layers(), HumanBytes(store.TotalBytes()).c_str(),
                static_cast<long long>(store.TotalTuples()), stats->seconds,
                stats->supersteps);
    PrintRecoveryStats(*stats);
    PrintMemoryStats(args, *stats);
    if (!args.spill_dir.empty()) {
      const storage::StorageStats st = store.storage_stats();
      std::printf(
          "storage: %llu layers flushed (%d spilled), %llu pages written, "
          "%s compressed / %s raw (ratio %.2f), %.3fs flushing\n",
          static_cast<unsigned long long>(st.layers_flushed),
          store.SpilledLayerCount(),
          static_cast<unsigned long long>(st.pages_written),
          HumanBytes(st.compressed_bytes).c_str(),
          HumanBytes(st.raw_serialized_bytes).c_str(), st.CompressionRatio(),
          st.flush_seconds);
      std::printf(
          "storage: cache %llu hit / %llu miss (%.0f%% hit rate), "
          "%llu evictions, %llu pages read, %llu prefetch requests\n",
          static_cast<unsigned long long>(st.cache_hits),
          static_cast<unsigned long long>(st.cache_misses),
          100.0 * st.CacheHitRate(),
          static_cast<unsigned long long>(st.cache_evictions),
          static_cast<unsigned long long>(st.pages_read),
          static_cast<unsigned long long>(st.prefetch_requests));
      if (st.flush_retries > 0 || st.read_retries > 0 ||
          st.layers_quarantined > 0 || st.degraded) {
        std::printf(
            "storage: %llu flush retries, %llu read retries, %llu layer(s) "
            "quarantined%s\n",
            static_cast<unsigned long long>(st.flush_retries),
            static_cast<unsigned long long>(st.read_retries),
            static_cast<unsigned long long>(st.layers_quarantined),
            st.degraded ? ", DEGRADED" : "");
      }
    }
    if (!args.stats_json.empty()) {
      json::JsonObject root = StatsJsonHeader(args, graph);
      root.SetRaw("engine", EngineStatsJson(*stats));
      AddMemoryStats(root, args, *stats);
      json::JsonObject store_json;
      store_json.Set("layers", store.num_layers())
          .Set("bytes", static_cast<uint64_t>(store.TotalBytes()))
          .Set("tuples", store.TotalTuples())
          .Set("spilled_layers", store.SpilledLayerCount());
      root.SetRaw("store", store_json.Dump());
      root.SetRaw("storage", StorageStatsJson(store.storage_stats()));
      if (int rc = WriteStatsJson(args.stats_json, root)) return rc;
    }
    if (!args.values_out.empty()) {
      Status dumped = DumpValues(args.values_out, final_values);
      if (!dumped.ok()) {
        std::fprintf(stderr, "values: %s\n", dumped.ToString().c_str());
        return 1;
      }
    }
    if (!args.store_out.empty()) {
      Status saved = store.SaveToFile(args.store_out);
      if (!saved.ok()) {
        std::fprintf(stderr, "save: %s\n", saved.ToString().c_str());
        return 1;
      }
      std::printf("store written to %s\n", args.store_out.c_str());
    }
    return 0;
  }

  std::vector<typename P::ValueType> final_values;
  auto run = session.RunOnline(program, *query, args.retention, &final_values);
  if (!run.ok()) {
    std::fprintf(stderr, "run: %s\n", run.status().ToString().c_str());
    return 1;
  }
  std::printf("analytic: %d supersteps, %lld messages, %.3fs\n",
              run->engine_stats.supersteps,
              static_cast<long long>(run->engine_stats.total_messages),
              run->engine_stats.seconds);
  PrintRecoveryStats(run->engine_stats);
  PrintMemoryStats(args, run->engine_stats);
  if (!args.values_out.empty()) {
    Status dumped = DumpValues(args.values_out, final_values);
    if (!dumped.ok()) {
      std::fprintf(stderr, "values: %s\n", dumped.ToString().c_str());
      return 1;
    }
  }
  std::printf("query tables:\n");
  for (const std::string& name : run->query_result.TableNames()) {
    std::printf("  %-20s %zu tuple(s)\n", name.c_str(),
                run->query_result.TupleCount(name));
  }
  const std::string profile = run->eval_stats.Summary(*query);
  if (!profile.empty()) {
    std::printf("rule profile (%s):\n%s",
                args.plan_joins ? "planned" : "no-plan", profile.c_str());
  }
  if (!args.stats_json.empty()) {
    json::JsonObject root = StatsJsonHeader(args, graph);
    root.SetRaw("engine", EngineStatsJson(run->engine_stats));
    AddMemoryStats(root, args, run->engine_stats);
    root.SetRaw("eval", EvalStatsJson(run->eval_stats));
    root.Set("transient_bytes", static_cast<uint64_t>(run->transient_bytes));
    std::vector<std::string> tables;
    for (const std::string& name : run->query_result.TableNames()) {
      json::JsonObject t;
      t.Set("name", name)
          .Set("tuples",
               static_cast<uint64_t>(run->query_result.TupleCount(name)));
      tables.push_back(t.Dump());
    }
    root.SetRaw("tables", json::JsonArray(tables));
    if (int rc = WriteStatsJson(args.stats_json, root)) return rc;
  }
  if (!args.dump_table.empty()) {
    const Relation* rel = run->query_result.Table(args.dump_table);
    if (rel == nullptr) {
      std::fprintf(stderr, "no table named %s\n", args.dump_table.c_str());
      return 1;
    }
    for (const std::string& row : rel->ToSortedStrings()) {
      std::printf("%s%s\n", args.dump_table.c_str(), row.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const std::string flag = argv[i];
    const char* v = nullptr;
    if (flag == "--analytic" && (v = next())) {
      args.analytic = v;
    } else if (flag == "--graph" && (v = next())) {
      args.graph_path = v;
    } else if (flag == "--rmat-scale" && (v = next())) {
      args.rmat_scale = std::atoi(v);
    } else if (flag == "--avg-degree" && (v = next())) {
      args.avg_degree = std::atof(v);
    } else if (flag == "--seed" && (v = next())) {
      args.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (flag == "--query" && (v = next())) {
      args.query = v;
    } else if (flag == "--param" && (v = next())) {
      const std::string kv = v;
      const auto eq = kv.find('=');
      if (eq == std::string::npos) return Usage();
      args.params.emplace_back(kv.substr(0, eq),
                               ParseParamValue(kv.substr(eq + 1)));
    } else if (flag == "--mode" && (v = next())) {
      args.mode = v;
    } else if (flag == "--store-out" && (v = next())) {
      args.store_out = v;
    } else if (flag == "--source" && (v = next())) {
      args.source = std::atoll(v);
    } else if (flag == "--iterations" && (v = next())) {
      args.iterations = std::atoi(v);
    } else if (flag == "--retention" && (v = next())) {
      args.retention = std::atoi(v);
    } else if (flag == "--dump" && (v = next())) {
      args.dump_table = v;
    } else if (flag == "--no-plan") {
      args.plan_joins = false;
    } else if (flag == "--spill-dir" && (v = next())) {
      args.spill_dir = v;
    } else if (flag == "--mem-budget-mb" && (v = next())) {
      args.mem_budget_mb = std::atof(v);
    } else if (flag == "--flush-threads" && (v = next())) {
      args.flush_threads = std::atoi(v);
    } else if (flag == "--graph-backend" && (v = next())) {
      args.graph_backend = v;
    } else if (flag == "--graph-budget-fraction" && (v = next())) {
      args.graph_budget_fraction = std::atof(v);
    } else if (flag == "--graph-spill" && (v = next())) {
      args.graph_spill = v;
    } else if (flag == "--graph-partition-span" && (v = next())) {
      args.graph_partition_span = std::atoll(v);
    } else if (flag == "--checkpoint-dir" && (v = next())) {
      args.checkpoint_dir = v;
    } else if (flag == "--checkpoint-every" && (v = next())) {
      args.checkpoint_every = std::atoi(v);
    } else if (flag == "--resume") {
      args.resume = true;
    } else if (flag == "--inject" && (v = next())) {
      args.inject = v;
    } else if (flag == "--inject-seed" && (v = next())) {
      args.inject_seed = static_cast<uint64_t>(std::atoll(v));
    } else if (flag == "--degrade-policy" && (v = next())) {
      args.degrade = v;
    } else if (flag == "--values-out" && (v = next())) {
      args.values_out = v;
    } else if (flag == "--stats-json" && (v = next())) {
      args.stats_json = v;
    } else {
      return Usage();
    }
  }

  if (!args.inject.empty()) {
    Status armed =
        recovery::FaultInjector::Global().Arm(args.inject, args.inject_seed);
    if (!armed.ok()) {
      std::fprintf(stderr, "inject: %s\n", armed.ToString().c_str());
      return 2;
    }
  }

  if (args.graph_backend != "memory" && args.graph_backend != "paged") {
    std::fprintf(stderr, "graph-backend: unknown backend '%s'\n",
                 args.graph_backend.c_str());
    return Usage();
  }
  // --mem-budget-mb is the TOTAL budget across provenance, paged graph
  // topology, and paged vertex state; the split is documented in
  // storage/memory_budget.h and DESIGN.md §2.7.
  args.split = storage::ResolveBudgetSplit(
      static_cast<size_t>(args.mem_budget_mb * 1024 * 1024),
      /*graph_paged=*/args.graph_backend == "paged",
      args.graph_budget_fraction);

  std::unique_ptr<PagedBackend> paged;
  const bool user_pinned_spill = !args.graph_spill.empty();
  Result<Graph> graph = Status::Internal("no graph");
  if (args.graph_backend == "paged") {
    if (args.graph_spill.empty()) {
      const std::filesystem::path dir =
          args.spill_dir.empty() ? std::filesystem::temp_directory_path()
                                 : std::filesystem::path(args.spill_dir);
      args.graph_spill =
          (dir / ("ariadne_graph." + std::to_string(::getpid()) + ".agp"))
              .string();
    }
    Status built = Status::OK();
    if (!args.graph_path.empty()) {
      // Stream the edge list straight into the AGP1 spill file — the full
      // graph is never materialized in memory.
      built = PagedBackend::BuildFromEdgeList(args.graph_path,
                                              args.graph_spill,
                                              args.graph_partition_span);
    } else {
      Result<Graph> generated = GenerateRmat({.scale = args.rmat_scale,
                                              .avg_degree = args.avg_degree,
                                              .seed = args.seed,
                                              .max_weight = 2.5});
      if (!generated.ok()) {
        std::fprintf(stderr, "graph: %s\n",
                     generated.status().ToString().c_str());
        return 1;
      }
      built = PagedBackend::CreateFrom(*generated, args.graph_spill,
                                       args.graph_partition_span);
      // The generated in-memory copy is dropped here; the run pages
      // topology back in from the spill file under the budget.
    }
    if (built.ok()) {
      PagedBackendOptions options;
      options.budget_bytes = args.split.graph_topology;
      auto opened = PagedBackend::Open(args.graph_spill, options);
      if (!opened.ok()) {
        built = opened.status();
      } else {
        paged = std::move(*opened);
      }
    }
    if (!built.ok()) {
      std::fprintf(stderr, "graph-backend: %s\n", built.ToString().c_str());
      return 1;
    }
    if (args.mem_budget_mb > 0 &&
        args.split.graph_topology < paged->max_partition_bytes()) {
      std::fprintf(stderr,
                   "warning: graph topology budget %s is below the largest "
                   "partition's working set %s; every fault reloads a "
                   "partition (raise --mem-budget-mb or "
                   "--graph-budget-fraction)\n",
                   HumanBytes(args.split.graph_topology).c_str(),
                   HumanBytes(paged->max_partition_bytes()).c_str());
    }
  } else if (!args.graph_path.empty()) {
    graph = LoadEdgeList(args.graph_path);
  } else {
    graph = GenerateRmat({.scale = args.rmat_scale,
                          .avg_degree = args.avg_degree,
                          .seed = args.seed,
                          .max_weight = 2.5});
  }
  if (paged == nullptr && !graph.ok()) {
    std::fprintf(stderr, "graph: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  const Graph& g = paged != nullptr ? *paged : *graph;
  std::printf("graph: %lld vertices, %lld edges (%s backend)\n",
              static_cast<long long>(g.num_vertices()),
              static_cast<long long>(g.num_edges()), g.backend_name());
  const VertexId source =
      args.source >= 0 ? args.source : HighestDegreeVertex(g);

  int rc = 2;
  bool matched = true;
  if (args.analytic == "pagerank") {
    PageRankProgram program({.iterations = args.iterations});
    rc = RunWith(args, g, program);
  } else if (args.analytic == "sssp") {
    SsspProgram program(source);
    rc = RunWith(args, g, program);
  } else if (args.analytic == "wcc") {
    WccProgram program;
    rc = RunWith(args, g, program);
  } else if (args.analytic == "bfs") {
    BfsProgram program(source);
    rc = RunWith(args, g, program);
  } else {
    matched = false;
  }
  if (!matched) rc = Usage();
  if (paged != nullptr) {
    // The spill file is scratch: remove it unless the user pinned a path.
    std::string path = paged->path();
    paged.reset();
    if (!user_pinned_spill) std::filesystem::remove(path);
  }
  return rc;
}
